"""BlasService: the BLAS3 serving runtime.

The paper generates a tuned library once; this module *serves* it.  A
:class:`BlasService` answers a stream of BLAS3 calls through four
cooperating mechanisms:

* **dispatch** — every request is sized, bucketed and routed through a
  ``(routine, arch, size-bucket)`` plan table with an LRU hot-plan cache
  (:mod:`repro.serve.dispatch`).  A plan miss tunes lazily through the
  PR 2 on-disk cache, so the *second* process start never searches.
* **micro-batching** — concurrent same-shape requests coalesce into one
  simulated-GPU launch (:mod:`repro.serve.batching`); the dispatcher
  waits up to ``batch_window_s`` for company before launching.  With
  ``pack_requests=True`` a second tier coalesces *across* requests:
  small same-routine GEMM calls — different data, even different
  shapes — are zero-padded into one strided-batched (BGEMM) launch,
  so a burst of tiny problems pays one launch instead of N (counters
  ``serve.packed`` / ``serve.pack_waste``).
* **deadlines + graceful degradation** — a request carrying a relative
  ``deadline_s`` never waits for a cold search: if its budget expires in
  the queue, or its plan is missing and not reconstructable from the
  on-disk cache in time, the CUBLAS/reference baseline answers instead
  (counter ``serve.fallbacks``) — degraded performance, never an error.
* **telemetry** — a span per launch and per request, plus counters for
  queue depth, batch size, plan hit/miss/evict, fallbacks and errors
  (glossary in the README's Serving section).

Launch execution flows through the compiled-kernel path: each tuned
plan's :class:`~repro.tuner.library.TunedRoutine` carries the service
telemetry into :class:`~repro.gpu.simulator.SimulatedGPU`, whose runs go
through :func:`repro.jit.execute` — so serving traffic shows up in the
``jit.*`` counters and pays interpreter cost only on fallback shapes.

Two execution modes share the same dispatch path:

* **threaded** (``service.start()`` or the context manager): a single
  dispatcher thread drains the queue — submitters block on
  :meth:`PendingResult.result`;
* **inline** (no thread): :meth:`BlasService.flush` drains the queue on
  the caller's thread — what the deterministic tests and the latency
  benchmark use.

Quickstart::

    from repro import BlasService, GTX_285

    with BlasService(GTX_285) as service:
        c = service.run("GEMM-NN", A=a, B=b, C=c, alpha=1.0, beta=0.0)
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..baselines.cublas import cublas_kernel
from ..blas3.reference import reference
from ..blas3.routines import get_spec, infer_sizes
from ..dag import Dag, Expr
from ..gpu.arch import GPUArch, GTX_285
from ..multigpu import MultiGPULibrary
from ..telemetry import Telemetry, ensure_telemetry
from ..tuner.chain import build_chain_plan, node_sizes_from_canonical
from ..tuner.library import LibraryGenerator, TunedRoutine
from ..tuner.options import TuningOptions
from ..tuner.space import small_space
from .batching import MicroBatcher
from .dispatch import MIN_BUCKET, DispatchTable, Plan, PlanKey, size_bucket
from .request import PendingResult, Request, Response

__all__ = ["ServeOptions", "BlasService", "PlanUnavailableError"]


class PlanUnavailableError(RuntimeError):
    """No tuned plan could be resolved for a request.

    Carries the request context (routine, bucket, reason) so callers —
    and their logs — see *what* failed to resolve, not a bare assertion
    (which would vanish entirely under ``python -O``).
    """

    def __init__(self, routine: str, bucket: int, reason: str):
        self.routine = routine
        self.bucket = bucket
        self.reason = reason
        super().__init__(
            f"no plan for {routine} (bucket {bucket}): {reason}"
        )


@dataclass(frozen=True)
class ServeOptions:
    """Runtime knobs of one :class:`BlasService` (tuning knobs live in
    :class:`~repro.tuner.options.TuningOptions`)."""

    #: largest coalesced launch
    max_batch: int = 8
    #: how long the dispatcher waits for same-shape company (seconds)
    batch_window_s: float = 0.002
    #: LRU capacity of the hot-plan table
    hot_plans: int = 64
    #: simulated devices the backend spreads each launch across
    devices: int = 1
    #: deadline applied to requests that do not carry their own
    default_deadline_s: Optional[float] = None
    #: tune one plan per size bucket (False: one plan per routine,
    #: tuned at TuningOptions.tune_size, still keyed per bucket)
    bucket_tuning: bool = True
    #: answer deadline-bound cold requests with the cost model's instant
    #: predicted plan (needs a trained model in the tuning cache dir)
    predicted_plans: bool = True
    #: tune predicted plans for real on a background thread and insert
    #: the verified winner into the table as soon as it lands
    background_promotion: bool = True
    #: coalesce small same-routine GEMM requests (different data, even
    #: different shapes) into one strided-batched BGEMM launch
    pack_requests: bool = False
    #: largest dimension eligible for pad-packing (see Request.pack_key)
    pack_max_dim: int = 64
    #: smallest dispatch bucket.  Below the default 16 the service tunes
    #: dedicated sub-16 plans over the small-tile space
    #: (:func:`repro.tuner.space.small_space`), so an N=8 call stops
    #: paying for the padded 16-class plan.
    min_bucket: int = MIN_BUCKET
    #: per-shard queue-depth high-water mark for the sharded tier's
    #: admission control: at or beyond this depth new requests are shed
    #: (answered instantly with ``source="shed"``) instead of queued.
    #: None = admit everything.
    shed_high_water: Optional[int] = None
    #: let the chain tuner fuse adjacent DAG nodes into single kernels
    #: where legal and modeled profitable (False: DAG requests still
    #: dispatch as one unit, but every node launches separately)
    fuse_dags: bool = False

    @classmethod
    def from_args(cls, args) -> "ServeOptions":
        """One :class:`ServeOptions` from a parsed ``argparse`` namespace.

        The single round-trip point for the serve CLI's flags
        (``--max-batch --window-ms --devices --deadline-ms --high-water
        --pack --min-bucket --fuse``); attributes missing from the
        namespace keep their dataclass defaults, so partial namespaces
        (tests, embedding tools) work.  ``--shards`` is intentionally
        *not* here — shard count is the sharded tier's constructor
        argument, not a per-service knob.
        """
        defaults = cls()
        window_ms = getattr(args, "window_ms", None)
        deadline_ms = getattr(args, "deadline_ms", None)
        min_bucket = getattr(args, "min_bucket", None)
        return cls(
            max_batch=getattr(args, "max_batch", defaults.max_batch),
            batch_window_s=(
                window_ms / 1e3
                if window_ms is not None
                else defaults.batch_window_s
            ),
            devices=getattr(args, "devices", defaults.devices),
            default_deadline_s=(
                deadline_ms / 1e3 if deadline_ms is not None else None
            ),
            pack_requests=bool(getattr(args, "pack", defaults.pack_requests)),
            min_bucket=(
                min_bucket if min_bucket is not None else defaults.min_bucket
            ),
            shed_high_water=getattr(args, "high_water", None),
            fuse_dags=bool(getattr(args, "fuse", defaults.fuse_dags)),
        )


class BlasService:
    """Serves BLAS3 calls from tuned plans with batching and fallback."""

    def __init__(
        self,
        arch: GPUArch = GTX_285,
        *,
        options: Optional[ServeOptions] = None,
        tuning: Optional[TuningOptions] = None,
        telemetry: Optional[Telemetry] = None,
        clock=time.monotonic,
    ):
        self.arch = arch
        self.options = options or ServeOptions()
        self.tuning = tuning or TuningOptions()
        self.telemetry = ensure_telemetry(telemetry)
        self.clock = clock
        self.table = DispatchTable(self.options.hot_plans, telemetry=self.telemetry)
        self._generators: Dict[int, LibraryGenerator] = {}
        self._multigpu: Dict[int, MultiGPULibrary] = {}
        # Guards the generator/backend get-or-create maps, which are
        # probed from the dispatcher thread, flush() callers and warm()
        # callers concurrently.  A dedicated RLock (re-entrant because
        # _backend_for nests _generator_for), NOT self._lock: generator
        # construction is slow and must not stall submitters holding
        # the queue's condition variable.
        self._gen_lock = threading.RLock()
        self._batcher = MicroBatcher(
            self.options.max_batch,
            pack=self.options.pack_requests,
            pack_max_dim=self.options.pack_max_dim,
        )
        self._pending: Dict[int, PendingResult] = {}
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._ids = itertools.count(1)
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._peak_reported = 0
        self._background: Dict[PlanKey, threading.Thread] = {}

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "BlasService":
        """Spawn the dispatcher thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return self
            self._running = True
            self._thread = threading.Thread(
                target=self._loop, name="blas-serve-dispatch", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the dispatcher after draining everything queued."""
        thread = None
        with self._lock:
            self._running = False
            thread = self._thread
            self._thread = None
            self._cond.notify_all()
        if thread is not None:
            thread.join()
        self.flush()  # anything left (or a never-started service)

    def __enter__(self) -> "BlasService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the public call surface ---------------------------------------
    def submit(
        self,
        routine: str,
        *,
        alpha: float = 1.0,
        beta: float = 1.0,
        sizes: Optional[Mapping[str, int]] = None,
        deadline_s: Optional[float] = None,
        **arrays: np.ndarray,
    ) -> PendingResult:
        """Enqueue one call (unified convention: keyword arrays).

        Returns a :class:`PendingResult`; block on ``.result()`` /
        ``.output()``.  Without a running dispatcher thread, call
        :meth:`flush` (or use :meth:`run`) to process the queue.
        """
        spec = get_spec(routine)  # canonicalises + validates the name
        if deadline_s is None:
            deadline_s = self.options.default_deadline_s
        bound = [array.name for array in spec.arrays if array.name in arrays]
        try:
            # single calls are one-node DAGs internally: the legacy
            # surface and the graph surface are the same machinery
            dag = Dag.single(spec.name, alpha=alpha, beta=beta, operands=bound)
        except ValueError:
            # under-bound call: still queued, answered at serve time
            # with source="error" exactly as before the DAG surface
            dag = None
        request = Request(
            id=next(self._ids),
            routine=spec.name,
            arrays={k: np.asarray(v) for k, v in arrays.items()},
            alpha=alpha,
            beta=beta,
            sizes=dict(sizes) if sizes is not None else None,
            deadline_s=deadline_s,
            submitted_at=self.clock(),
            dag=dag,
        )
        return self._enqueue(request)

    def submit_dag(
        self,
        dag: "Dag | Expr",
        *,
        deadline_s: Optional[float] = None,
        **arrays: np.ndarray,
    ) -> PendingResult:
        """Enqueue one expression-DAG request (keyword arrays bind the
        DAG's named inputs).

        A one-node DAG delegates to :meth:`submit` — same plan table,
        same counters, bit-identical result.  Multi-node DAGs dispatch
        as ONE unit keyed on the graph's canonical fingerprint
        (:attr:`repro.dag.Dag.routine_key`), so identical DAG shapes
        share a plan and micro-batch together; the resolved
        :class:`~repro.tuner.chain.ChainPlan` fuses adjacent nodes when
        ``ServeOptions.fuse_dags`` is set and the tuner finds fusion
        both legal and modeled profitable.

        Counters: ``serve.dag.requests`` / ``serve.dag.nodes`` /
        ``serve.dag.single``.
        """
        dag = dag if isinstance(dag, Dag) else Dag(dag)
        if len(dag) == 1:
            node = dag.nodes[0]
            self.telemetry.incr("serve.dag.single")
            return self.submit(
                node.routine,
                alpha=node.alpha,
                beta=node.beta,
                deadline_s=deadline_s,
                **{op: arrays[sym] for op, sym in node.operands.items()},
            )
        if deadline_s is None:
            deadline_s = self.options.default_deadline_s
        values = {k: np.asarray(v) for k, v in arrays.items()}
        request = Request(
            id=next(self._ids),
            routine=dag.routine_key,
            arrays=values,
            sizes=dag.canonical_sizes(values),
            deadline_s=deadline_s,
            submitted_at=self.clock(),
            dag=dag,
        )
        self.telemetry.incr("serve.dag.requests")
        self.telemetry.incr("serve.dag.nodes", len(dag))
        return self._enqueue(request)

    def run_dag(
        self,
        dag: "Dag | Expr",
        *,
        deadline_s: Optional[float] = None,
        **arrays: np.ndarray,
    ) -> np.ndarray:
        """Submit one DAG request and block for its result array."""
        pending = self.submit_dag(dag, deadline_s=deadline_s, **arrays)
        if self._thread is None:
            self.flush()
        return pending.output()

    def _enqueue(self, request: Request) -> PendingResult:
        """Register + queue one built request (shared by every submit
        surface)."""
        pending = PendingResult(request.id, telemetry=self.telemetry)
        self.telemetry.incr("serve.requests")
        with self._lock:
            self._pending[request.id] = pending
            self._batcher.append(request)
            self.telemetry.incr("serve.queue.enqueued")
            depth = self._batcher.peak_depth
            if depth > self._peak_reported:
                self.telemetry.incr("serve.queue.peak_depth", depth - self._peak_reported)
                self._peak_reported = depth
            self._cond.notify_all()
        return pending

    def run(
        self,
        routine: str,
        *,
        alpha: float = 1.0,
        beta: float = 1.0,
        sizes: Optional[Mapping[str, int]] = None,
        deadline_s: Optional[float] = None,
        **arrays: np.ndarray,
    ) -> np.ndarray:
        """Submit one call and block for its result array."""
        pending = self.submit(
            routine,
            alpha=alpha,
            beta=beta,
            sizes=sizes,
            deadline_s=deadline_s,
            **arrays,
        )
        if self._thread is None:
            self.flush()
        return pending.output()

    def flush(self) -> int:
        """Drain the queue on the caller's thread; returns launches run."""
        launches = 0
        while True:
            with self._lock:
                batch = self._batcher.next_batch()
            if not batch:
                return launches
            self._execute_batch(batch)
            launches += 1

    def stats(self) -> Dict:
        """Service-level snapshot: counters + table/queue state."""
        with self._lock:
            queue_depth = len(self._batcher)
            peak = self._batcher.peak_depth
        return {
            "counters": self.telemetry.metrics.snapshot(),
            "plans": len(self.table),
            "queue_depth": queue_depth,
            "peak_queue_depth": peak,
        }

    def queue_depth(self) -> int:
        """Requests queued right now (the admission-control signal)."""
        with self._lock:
            return len(self._batcher)

    def warm(self, routine: str, n: int) -> Plan:
        """Pre-tune (or cache-load) the plan a size-``n`` call will use.

        Raises :class:`PlanUnavailableError` if no plan can be resolved
        (warm requests carry no deadline, so this only happens when the
        tuner itself cannot produce one).
        """
        spec = get_spec(routine)
        sizes = spec.make_sizes(n)
        plan, reason = self._resolve_plan(
            Request(
                id=0,
                routine=spec.name,
                arrays={},
                sizes=sizes,
                submitted_at=self.clock(),
            )
        )
        if plan is None:
            raise PlanUnavailableError(
                spec.name, self._bucket(sizes), reason or "unknown"
            )
        return plan

    # -- plan snapshots (restart/rescale without re-tuning) ------------
    def _snapshot_cache(self):
        if self.tuning.cache_dir is None:
            return None
        from ..tuner.cache import TuningCache

        return TuningCache(self.tuning.cache_dir, telemetry=self.telemetry)

    def plan_records(self) -> List[Dict]:
        """Serialized snapshot entries for every resident *verified* plan.

        Predicted plans are provisional (no search ran) and are excluded
        — a rehydrating worker should re-predict or tune, not trust a
        stale instant plan.
        """
        from ..tuner.persist import routine_record

        records = []
        for plan in self.table.plans():
            if plan.predicted:
                continue
            if plan.routine.startswith("dag:"):
                # chain plans hold a ChainPlan, not a TunedRoutine — no
                # snapshot format yet; re-tuned from per-node caches
                continue
            records.append(
                {
                    "routine": plan.routine,
                    "bucket": plan.bucket,
                    "record": routine_record(plan.tuned),
                }
            )
        return records

    def snapshot_plans(self, tag: str = "serve") -> int:
        """Persist the dispatch table through the tuning cache.

        Returns the number of plans stored (0 without a ``cache_dir``).
        Counter: ``serve.snapshot.stored``.
        """
        cache = self._snapshot_cache()
        if cache is None:
            return 0
        records = self.plan_records()
        cache.store_plan_snapshot(self.arch, tag, records)
        self.telemetry.incr("serve.snapshot.stored", len(records))
        return len(records)

    def rehydrate_plans(self, tag: str = "serve", only=None) -> int:
        """Load a persisted snapshot into the dispatch table.

        ``only`` filters by :data:`PlanKey` (the sharded tier passes its
        ownership predicate so each worker rehydrates just the keys that
        route to it).  Resident keys are never overwritten — live plans
        carry fresher hit statistics than any snapshot.  Unreadable
        entries are skipped and counted, not fatal.  Counters:
        ``serve.rehydrated`` / ``serve.rehydrate_errors``.
        """
        cache = self._snapshot_cache()
        if cache is None:
            return 0
        doc = cache.load_plan_snapshot(self.arch, tag)
        if doc is None:
            return 0
        from ..tuner.persist import rebuild_routine

        loaded = 0
        for entry in doc["plans"]:
            try:
                routine = entry["routine"]
                bucket = int(entry["bucket"])
                key: PlanKey = (routine, self.arch.name, bucket)
                if only is not None and not only(key):
                    continue
                if key in self.table:
                    continue
                tuned = rebuild_routine(entry["record"], self.arch)
            except Exception:
                self.telemetry.incr("serve.rehydrate_errors")
                continue
            tuned.telemetry = self.telemetry
            if tuned.fallback is not None:
                tuned.fallback.telemetry = self.telemetry
            self.table.insert(Plan(key, tuned))
            loaded += 1
        if loaded:
            self.telemetry.incr("serve.rehydrated", loaded)
        return loaded

    # -- dispatcher ----------------------------------------------------
    def _loop(self) -> None:
        """Dispatcher thread: wait → micro-batch window → launch."""
        while True:
            with self._lock:
                while self._running and not self._batcher:
                    self._cond.wait()
                if not self._batcher:
                    if not self._running:
                        return
                    continue
                self._await_company(self.clock() + self.options.batch_window_s)
                batch = self._batcher.next_batch()
            if batch:
                self._execute_batch(batch)

    def _await_company(self, window_until: float) -> None:
        """Hold the head request until ``window_until`` (or a full batch).

        Runs under ``self._lock``.  Each wakeup — including the spurious
        ones every new submission's ``notify_all`` causes — re-waits only
        the *remaining* window, so one late rider cannot re-arm a full
        window and stretch the head's wait toward 2× ``batch_window_s``.
        """
        while (
            self._running
            and self._batcher.matching_head() < self._batcher.max_batch
        ):
            remaining = window_until - self.clock()
            if remaining <= 0:
                return
            self._cond.wait(timeout=remaining)

    # -- execution -----------------------------------------------------
    def _sizes_for(self, request: Request) -> Dict[str, int]:
        if request.sizes is not None:
            return dict(request.sizes)
        return infer_sizes(get_spec(request.routine), request.arrays)

    def _bucket(self, sizes: Mapping[str, int]) -> int:
        return size_bucket(sizes, floor=self.options.min_bucket)

    def _tuning_for(self, bucket: int) -> TuningOptions:
        """Tuning options for one size bucket: tune *at* the bucket, and
        below the standard 16-class swap in the small-tile space (the
        default space's BM/BN ≥ 16 tiles can only pad a sub-16 call)."""
        tuning = self.tuning
        if bucket:
            tuning = tuning.replace(tune_size=bucket)
            if bucket < MIN_BUCKET:
                tuning = tuning.replace(space=tuple(small_space()))
        return tuning

    def _generator_for(self, bucket: int) -> LibraryGenerator:
        if not self.options.bucket_tuning:
            bucket = 0
        with self._gen_lock:
            gen = self._generators.get(bucket)
            if gen is None:
                gen = LibraryGenerator(
                    self.arch,
                    telemetry=self.telemetry,
                    options=self._tuning_for(bucket),
                )
                self._generators[bucket] = gen
        return gen

    def _backend_for(self, bucket: int) -> Optional[MultiGPULibrary]:
        """The multi-device backend (None for the single-GPU path)."""
        if self.options.devices <= 1:
            return None
        with self._gen_lock:
            lib = self._multigpu.get(bucket)
            if lib is None:
                lib = MultiGPULibrary(
                    self.arch,
                    self.options.devices,
                    generator=self._generator_for(bucket),
                    telemetry=self.telemetry,
                )
                self._multigpu[bucket] = lib
        return lib

    def _resolve_plan(self, request: Request) -> Tuple[Optional[Plan], Optional[str]]:
        """Plan for a request, or ``(None, reason)`` when only the
        baseline can answer within the deadline."""
        if request.chained:
            return self._resolve_chain_plan(request)
        sizes = self._sizes_for(request)
        bucket = self._bucket(sizes)
        key: PlanKey = (request.routine, self.arch.name, bucket)
        plan = self.table.lookup(key)
        if plan is not None:
            return plan, None
        generator = self._generator_for(bucket)
        if request.deadline_s is not None and not generator.has_cached(request.routine):
            # A cold search will not fit any deadline budget.  Before
            # degrading to the baseline, try the cost model's instant
            # predicted plan: the model's top config, cheaply verified —
            # answered now, tuned for real in the background.
            if self.options.predicted_plans:
                predicted = generator.predict(request.routine)
                if predicted is not None:
                    plan = Plan(key, predicted, predicted=True)
                    self.table.insert(plan)
                    self.telemetry.incr("serve.predicted_plans")
                    self._promote_async(key, bucket, request.routine)
                    return plan, None
            return None, "no-plan"
        with self.telemetry.span(
            "serve.tune", routine=request.routine, bucket=bucket
        ):
            tuned = generator.generate(request.routine)
        self.telemetry.incr("serve.tuned")
        plan = Plan(key, tuned)
        self.table.insert(plan)
        return plan, None

    def _resolve_chain_plan(
        self, request: Request
    ) -> Tuple[Optional[Plan], Optional[str]]:
        """Chain plan for a multi-node DAG request.

        Keyed exactly like single-call plans — ``(dag:<fingerprint>,
        arch, bucket)`` — so identical DAG shapes share one resolved
        :class:`~repro.tuner.chain.ChainPlan` and hit the hot table.
        Deadline-bound requests only tune when every node's per-routine
        plan is reconstructable from the on-disk cache (the fusion
        search itself is cheap; cold per-node searches are not).
        """
        sizes = self._sizes_for(request)
        bucket = self._bucket(sizes)
        key: PlanKey = (request.routine, self.arch.name, bucket)
        plan = self.table.lookup(key)
        if plan is not None:
            return plan, None
        dag = request.dag
        generator = self._generator_for(bucket)
        if request.deadline_s is not None and not all(
            generator.has_cached(node.routine) for node in dag.nodes
        ):
            return None, "no-plan"
        with self.telemetry.span(
            "serve.tune_chain", routine=request.routine, bucket=bucket
        ):
            chain_plan = build_chain_plan(
                dag,
                generator,
                node_sizes=node_sizes_from_canonical(dag, sizes),
                fuse=self.options.fuse_dags,
                telemetry=self.telemetry,
            )
        self.telemetry.incr("serve.dag.tuned")
        plan = Plan(key, chain_plan)
        self.table.insert(plan)
        return plan, None

    # -- background promotion ------------------------------------------
    def _promote_async(self, key: PlanKey, bucket: int, routine: str) -> None:
        """Kick off the real tuning run that will replace the predicted
        plan as soon as it completes."""
        if not self.options.background_promotion:
            return
        with self._lock:
            if key in self._background:
                return
            thread = threading.Thread(
                target=self._background_tune,
                args=(key, bucket, routine),
                name=f"blas-serve-promote-{routine}-{bucket}",
                daemon=True,
            )
            self._background[key] = thread
        thread.start()

    def _background_tune(self, key: PlanKey, bucket: int, routine: str) -> None:
        """Full tune on a background thread (fresh generator: the shared
        per-bucket generators are not thread safe).

        The verified winner is inserted *directly* when tuning finishes.
        Parking it for a later hit of the predicted plan would leak the
        work whenever that plan gets LRU-evicted first — the promotion
        entry could then never be consumed, and the next miss would
        re-tune from scratch.  Direct insertion only replaces a
        predicted (or absent) resident: a verified plan that arrived by
        another path is never downgraded.
        """
        try:
            generator = LibraryGenerator(
                self.arch,
                telemetry=self.telemetry,
                options=self._tuning_for(bucket if self.options.bucket_tuning else 0),
            )
            with self.telemetry.span(
                "serve.background_tune", routine=routine, bucket=bucket
            ):
                tuned = generator.generate(routine)
            # Land the tuned plan directly.  Parking it for a later hit
            # on the *predicted* plan leaks the tune whenever the
            # prediction is evicted first: the promotion is keyed to a
            # plan that no longer exists and never fires.
            resident = self.table.peek(key)
            if resident is None or resident.predicted:
                hits = resident.hits if resident is not None else 0
                self.table.insert(Plan(key, tuned, hits=hits))
                self.telemetry.incr("serve.plan.promoted")
            self.telemetry.incr("serve.background_tuned")
        except Exception:
            self.telemetry.incr("serve.background_tune_errors")
        finally:
            with self._lock:
                self._background.pop(key, None)

    def join_background(self, timeout: Optional[float] = None) -> None:
        """Wait for in-flight background tunes (deterministic tests)."""
        with self._lock:
            threads = list(self._background.values())
        for thread in threads:
            thread.join(timeout)

    def _execute_batch(self, batch: List[Request]) -> None:
        first = batch[0]
        started = self.clock()
        with self.telemetry.span(
            "serve.launch", routine=first.routine, batch=len(batch)
        ) as launch:
            self.telemetry.incr("serve.launches")
            self.telemetry.incr("serve.batched_requests", len(batch))
            if len(batch) > 1:
                self.telemetry.incr("serve.coalesced", len(batch) - 1)
            if self.options.pack_requests and len(batch) > 1:
                if self._try_packed(batch, started, launch):
                    return
                # Packing declined (no batched plan, non-GEMM, ...).  A
                # pack-tier batch may mix group keys, and the plain path
                # resolves ONE plan for the whole batch — split back
                # into exact-shape groups so no rider is served against
                # the head's plan and sizes.
                groups: Dict[Tuple, List[Request]] = {}
                for request in batch:
                    groups.setdefault(request.group_key(), []).append(request)
                if len(groups) > 1:
                    for group in groups.values():
                        self._execute_group(group, started, launch)
                    return
            self._execute_group(batch, started, launch)

    def _execute_group(
        self, batch: List[Request], started: float, launch
    ) -> None:
        """Serve one same-``group_key`` batch through a shared plan."""
        first = batch[0]
        try:
            plan, fallback_reason = self._resolve_plan(first)
        except Exception as exc:  # un-servable routine/shape
            for request in batch:
                self._fulfill_error(request, exc, len(batch), started)
            return
        # Deadlines are judged *after* plan resolution: a cold tune
        # (or cache rebuild) runs on this thread, and a batch member
        # whose budget it consumed must degrade, not be served late
        # as if the tune were free.
        resolved_at = self.clock()
        launch.tags["source"] = "fallback" if plan is None else "tuned"
        backend = None
        if plan is not None and not first.chained:
            # chain plans execute whole DAGs themselves; the multi-GPU
            # backend only understands single-routine calls
            backend = self._backend_for(plan.bucket)
        for request in batch:
            self._serve_one(
                request,
                plan,
                backend,
                fallback_reason,
                len(batch),
                started,
                resolved_at,
            )

    def _try_packed(self, batch: List[Request], started: float, launch) -> bool:
        """Serve a whole batch as ONE strided-batched (BGEMM) launch.

        Requests are stacked along the batch dimension, zero-padded to
        the batch's per-dimension maxima; per-request ``alpha``/``beta``
        scaling is applied host-side afterwards (the kernel computes the
        core update, like every plan — see DESIGN.md).  Returns False
        *without serving anything* when the batch cannot pack (non-GEMM
        head, unsizable member, or no batched plan resolvable) — the
        caller then falls back to per-group serving.

        Counters: ``serve.packed_launches``, ``serve.packed`` (requests
        served packed) and ``serve.pack_waste`` (padded-minus-logical
        multiply-accumulate volume — the price of shape-class mixing).
        """
        first = batch[0]
        parts = first.routine.split("-", 1)
        if parts[0] != "GEMM":
            return False
        try:
            sized = [(request, self._sizes_for(request)) for request in batch]
        except Exception:
            return False
        dims = {
            "M": max(s["M"] for _r, s in sized),
            "N": max(s["N"] for _r, s in sized),
            "K": max(s.get("K", s["N"]) for _r, s in sized),
        }
        probe = Request(
            id=first.id,
            routine=f"BGEMM-{parts[1]}",
            arrays={},
            sizes={"P": len(batch), **dims},
            deadline_s=first.deadline_s,
            submitted_at=first.submitted_at,
        )
        try:
            plan, _reason = self._resolve_plan(probe)
        except Exception:
            return False
        if plan is None:
            return False
        # Committed to the packed path from here on: every member is
        # answered below.  Budgets are re-judged on the post-resolution
        # clock, exactly like the per-group path.
        resolved_at = self.clock()
        live = [(r, s) for r, s in sized if not r.expired(resolved_at)]
        for request, _sizes in sized:
            if request.expired(resolved_at):
                self._serve_one(
                    request, None, None, None, len(batch), started, resolved_at
                )
        if not live:
            return True
        ta, tb = parts[1][0], parts[1][1]
        p, m, n, k = len(live), dims["M"], dims["N"], dims["K"]
        a_pack = np.zeros((p, m, k) if ta == "N" else (p, k, m), np.float32)
        b_pack = np.zeros((p, k, n) if tb == "N" else (p, n, k), np.float32)
        logical_macs = 0
        for i, (request, s) in enumerate(live):
            sm, sn, sk = s["M"], s["N"], s.get("K", s["N"])
            ra = (sm, sk) if ta == "N" else (sk, sm)
            rb = (sk, sn) if tb == "N" else (sn, sk)
            a_in = np.asarray(request.arrays["A"], dtype=np.float32)
            b_in = np.asarray(request.arrays["B"], dtype=np.float32)
            a_pack[i, : ra[0], : ra[1]] = a_in[: ra[0], : ra[1]]
            b_pack[i, : rb[0], : rb[1]] = b_in[: rb[0], : rb[1]]
            logical_macs += sm * sn * sk
        try:
            packed = plan.tuned._execute(
                {"A": a_pack, "B": b_pack, "C": np.zeros((p, m, n), np.float32)},
                sizes={"P": p, "M": m, "N": n, "K": k},
                alpha=1.0,
                beta=0.0,
            )
        except Exception as exc:
            for request, _s in live:
                self._fulfill_error(request, exc, len(batch), started)
            return True
        launch.tags["source"] = "tuned"
        launch.tags["packed"] = p
        self.telemetry.incr("serve.packed_launches")
        self.telemetry.incr("serve.packed", p)
        self.telemetry.incr("serve.pack_waste", p * m * n * k - logical_macs)
        for i, (request, s) in enumerate(live):
            sm, sn = s["M"], s["N"]
            with self.telemetry.span(
                "serve.request", routine=request.routine, id=request.id
            ) as span:
                span.tags["source"] = "tuned"
                span.tags["packed"] = True
                result = request.alpha * packed[i, :sm, :sn]
                c_in = request.arrays.get("C")
                if c_in is not None and request.beta != 0.0:
                    result = result + request.beta * np.asarray(
                        c_in, dtype=np.float32
                    )[:sm, :sn]
                response = Response(
                    request_id=request.id,
                    routine=request.routine,
                    output=np.asarray(result, dtype=np.float32),
                    source="tuned",
                    batch_size=len(batch),
                    wait_s=max(0.0, started - request.submitted_at),
                    total_s=max(0.0, self.clock() - request.submitted_at),
                )
            self._fulfill(response)
        return True

    def _serve_one(
        self,
        request: Request,
        plan: Optional[Plan],
        backend: Optional[MultiGPULibrary],
        fallback_reason: Optional[str],
        batch_size: int,
        started: float,
        resolved_at: Optional[float] = None,
    ) -> None:
        wait_s = max(0.0, started - request.submitted_at)
        if resolved_at is None:
            resolved_at = started
        with self.telemetry.span(
            "serve.request", routine=request.routine, id=request.id
        ) as span:
            reason = fallback_reason
            if reason is None and request.expired(resolved_at):
                reason = "deadline"
                self.telemetry.incr("serve.deadline_misses")
            try:
                if reason is None and plan is not None:
                    output = self._run_tuned(request, plan, backend)
                    source = "tuned"
                else:
                    output = self._run_fallback(request)
                    source = "fallback"
                    self.telemetry.incr("serve.fallbacks")
                span.tags["source"] = source
                response = Response(
                    request_id=request.id,
                    routine=request.routine,
                    output=output,
                    source=source,
                    fallback_reason=reason,
                    batch_size=batch_size,
                    wait_s=wait_s,
                    total_s=max(0.0, self.clock() - request.submitted_at),
                )
            except Exception as exc:
                self._fulfill_error(request, exc, batch_size, started)
                return
        self._fulfill(response)

    def _run_tuned(
        self,
        request: Request,
        plan: Plan,
        backend: Optional[MultiGPULibrary],
    ) -> np.ndarray:
        if request.chained:
            output = plan.tuned.execute(request.dag, request.arrays)
            self.telemetry.incr(
                "serve.dag.fused" if plan.tuned.fused else "serve.dag.unfused"
            )
            return np.asarray(output, dtype=np.float32)
        if backend is not None:
            return backend.run(
                request.routine,
                alpha=request.alpha,
                beta=request.beta,
                sizes=request.sizes,
                **request.arrays,
            )
        return plan.tuned._execute(
            request.arrays,
            sizes=request.sizes,
            alpha=request.alpha,
            beta=request.beta,
        )

    def _run_fallback(self, request: Request) -> np.ndarray:
        """Baseline answer: CUBLAS 3.2 behavioural kernel for the modeled
        cost, reference semantics for the functional result."""
        if request.chained:
            # chained baseline: every node through the NumPy reference,
            # back to back — the semantic contract fused plans match
            with self.telemetry.span(
                "serve.fallback", routine=request.routine
            ):
                out = request.dag.reference(request.arrays)
                return np.asarray(out, dtype=np.float32)
        with self.telemetry.span(
            "serve.fallback", routine=request.routine
        ) as span:
            sizes = self._sizes_for(request)
            n = max(sizes.values())
            try:
                run = cublas_kernel(request.routine).profile(self.arch, n)
                span.tags["model_gflops"] = round(run.gflops, 1)
            except Exception:
                span.tags["model_gflops"] = None  # baseline model unavailable
            out = reference(
                request.routine,
                request.arrays,
                alpha=request.alpha,
                beta=request.beta,
            )
            return np.asarray(out, dtype=np.float32)

    # -- fulfilment ----------------------------------------------------
    def _fulfill(self, response: Response) -> None:
        with self._lock:
            pending = self._pending.pop(response.request_id, None)
        if pending is not None:
            pending.fulfill(response)

    def _fulfill_error(
        self, request: Request, exc: Exception, batch_size: int, started: float
    ) -> None:
        self.telemetry.incr("serve.errors")
        self._fulfill(
            Response(
                request_id=request.id,
                routine=request.routine,
                output=None,
                source="error",
                batch_size=batch_size,
                wait_s=max(0.0, started - request.submitted_at),
                total_s=max(0.0, self.clock() - request.submitted_at),
                error=f"{type(exc).__name__}: {exc}",
            )
        )
