"""Traffic synthesis and virtual-time replay for the sharded tier.

Proving "4 shards sustain ≥2× the QPS of 1" with wall-clock threads is
impossible on this substrate: the simulated GPU is pure Python/NumPy, so
every shard's "kernel" contends for one interpreter lock and thread-level
scaling measures the GIL, not the architecture.  This module measures
the architecture instead, the way queueing studies do — discrete-event
simulation in *virtual time* over the tier's **real control plane**:

* routing goes through a real :class:`~repro.serve.shard.ShardRouter`;
* admission goes through a real
  :class:`~repro.serve.admission.AdmissionController` fed the simulated
  queue depth (so ``serve.shed`` counters are the production counters);
* plan residency goes through real per-shard
  :class:`~repro.serve.dispatch.DispatchTable` instances (real LRU,
  real hit/miss/evict counters), cold keys paying a tune once on their
  owner shard exactly as the live tier does.

Only the *durations* are modeled: kernel time from the arithmetic
intensity of the routine at its size (``2·n³ / modeled-GFLOP/s``), plus
a fixed per-request dispatch overhead and a fixed cold-tune cost — both
defaulted from the measured ``BENCH_serve.json`` orders of magnitude and
overridable from measurements.

Trace shape follows serving reality: Poisson arrivals (exponential
inter-arrival gaps at ``rate_qps``), a heavy-tailed size mix (Zipf over
power-of-two classes — most calls small, the tail huge), mixed routines,
and a deadline-carrying fraction.  Everything is seeded and the replay
never reads a wall clock, so a given (profile, scenario) pair produces
byte-identical reports in CI smoke mode and full runs alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..gpu.arch import GPUArch, GTX_285
from ..telemetry import Telemetry, ensure_telemetry
from .admission import AdmissionController
from .dispatch import DispatchTable, Plan, PlanKey, size_bucket
from .shard import ShardRouter

__all__ = [
    "TrafficProfile",
    "TrafficEvent",
    "ServiceModel",
    "ReplayReport",
    "synthesize_trace",
    "replay",
]


@dataclass(frozen=True)
class TrafficProfile:
    """Shape of one synthetic serving workload."""

    #: offered load (Poisson arrival rate)
    rate_qps: float = 500.0
    #: arrival-window length in virtual seconds
    duration_s: float = 2.0
    #: routine mix and weights (GEMM-heavy, like BLAS3 traffic)
    routines: Tuple[str, ...] = ("GEMM-NN", "SYMM-LL", "TRSM-LL-N")
    routine_weights: Tuple[float, ...] = (0.6, 0.25, 0.15)
    #: power-of-two size classes, smallest first
    size_classes: Tuple[int, ...] = (16, 32, 64, 128, 256, 512)
    #: Zipf exponent over size classes — small sizes dominate, the
    #: tail is rare but thousands of times more expensive (n³)
    tail_exponent: float = 1.2
    #: fraction of requests carrying a deadline
    deadline_fraction: float = 0.25
    deadline_s: float = 0.05
    seed: int = 0


@dataclass(frozen=True)
class TrafficEvent:
    """One arrival in the synthesized trace."""

    at: float
    routine: str
    n: int
    deadline_s: Optional[float] = None


def synthesize_trace(profile: TrafficProfile) -> List[TrafficEvent]:
    """Seeded Poisson/Zipf trace for :func:`replay`."""
    rng = np.random.default_rng(profile.seed)
    routine_w = np.asarray(profile.routine_weights, dtype=float)
    routine_w = routine_w / routine_w.sum()
    size_w = np.arange(1, len(profile.size_classes) + 1, dtype=float)
    size_w = size_w ** -profile.tail_exponent
    size_w = size_w / size_w.sum()

    events: List[TrafficEvent] = []
    at = 0.0
    while True:
        at += rng.exponential(1.0 / profile.rate_qps)
        if at >= profile.duration_s:
            return events
        routine = profile.routines[rng.choice(len(profile.routines), p=routine_w)]
        n = int(profile.size_classes[rng.choice(len(profile.size_classes), p=size_w)])
        deadline = (
            profile.deadline_s
            if rng.random() < profile.deadline_fraction
            else None
        )
        events.append(TrafficEvent(at=at, routine=routine, n=n, deadline_s=deadline))


@dataclass(frozen=True)
class ServiceModel:
    """Modeled durations of the replay (the only non-real component).

    Defaults follow the measured serving benchmarks: dispatch overhead
    in the hundreds of microseconds (``BENCH_serve.json``
    ``hot_dispatch_s``), cold tunes in the hundreds of milliseconds.
    """

    #: modeled kernel throughput of a tuned plan
    tuned_gflops: float = 300.0
    #: baseline (fallback) throughput — the degraded path
    fallback_gflops: float = 100.0
    #: per-request dispatch cost (probe + queue machinery)
    overhead_s: float = 0.0003
    #: one cold tune (compose → search → verify), paid once per
    #: (routine, bucket) on its owner shard
    tune_cost_s: float = 0.25

    def kernel_time(self, n: int, *, fallback: bool = False) -> float:
        gflops = self.fallback_gflops if fallback else self.tuned_gflops
        return (2.0 * float(n) ** 3) / (gflops * 1e9)


class _ModeledRoutine:
    """Stands in for a TunedRoutine inside the replay's real tables."""

    def __init__(self, routine: str, bucket: int):
        self.name = routine
        self.bucket = bucket


@dataclass
class ReplayReport:
    """What one replay scenario measured."""

    shards: int
    shed_high_water: Optional[int]
    offered: int
    offered_qps: float
    completed: int
    shed: int
    fallbacks: int
    tunes: int
    sustained_qps: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    makespan_s: float
    max_queue_depth: int
    per_shard_completed: List[int] = field(default_factory=list)

    def to_record(self) -> Dict:
        return {
            "shards": self.shards,
            "shed_high_water": self.shed_high_water,
            "offered": self.offered,
            "offered_qps": round(self.offered_qps, 1),
            "completed": self.completed,
            "shed": self.shed,
            "fallbacks": self.fallbacks,
            "tunes": self.tunes,
            "sustained_qps": round(self.sustained_qps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "makespan_s": round(self.makespan_s, 4),
            "max_queue_depth": self.max_queue_depth,
            "per_shard_completed": self.per_shard_completed,
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def replay(
    trace: List[TrafficEvent],
    *,
    shards: int,
    shed_high_water: Optional[int] = None,
    model: Optional[ServiceModel] = None,
    arch: GPUArch = GTX_285,
    hot_plans: int = 64,
    prewarmed: bool = False,
    telemetry: Optional[Telemetry] = None,
) -> ReplayReport:
    """Replay a trace through the real control plane in virtual time.

    Each shard is one FIFO server (the dispatcher thread serializes
    launches); arrivals route via the real ring, are admitted or shed by
    the real controller against the simulated backlog, and probe a real
    per-shard :class:`DispatchTable`.  ``prewarmed=True`` starts every
    ``(routine, bucket)`` key resident on its owner shard — the
    rehydrated-tier scenario; otherwise each key's first admitted
    arrival pays ``model.tune_cost_s`` on its owner, exactly once.

    Deadline-carrying arrivals that meet a cold table entry degrade to
    the fallback (they cannot afford the tune — the live service's
    "no-plan" path) instead of paying it.
    """
    model = model or ServiceModel()
    telemetry = ensure_telemetry(telemetry)
    router = ShardRouter(shards)
    admission = AdmissionController(shed_high_water, telemetry=telemetry)
    tables = [DispatchTable(hot_plans, telemetry=telemetry) for _ in range(shards)]

    def key_for(event: TrafficEvent) -> PlanKey:
        return (event.routine, arch.name, size_bucket({"n": event.n}))

    if prewarmed:
        for event in trace:
            key = key_for(event)
            owner = router.route(key[0], key[2])
            if key not in tables[owner]:
                tables[owner].insert(Plan(key, _ModeledRoutine(key[0], key[2])))

    #: virtual time each shard's server frees up
    busy_until = [0.0] * shards
    #: start times of queued-but-unstarted work, per shard (for depth)
    queued: List[List[float]] = [[] for _ in range(shards)]

    latencies: List[float] = []
    per_shard_completed = [0] * shards
    shed = fallbacks = tunes = 0
    max_depth = 0
    last_finish = 0.0

    for event in trace:
        key = key_for(event)
        shard = router.route(key[0], key[2])
        telemetry.incr("serve.shard.routed")
        starts = queued[shard]
        while starts and starts[0] <= event.at:
            starts.pop(0)
        depth = len(starts)
        max_depth = max(max_depth, depth)
        if not admission.admit(shard, depth):
            shed += 1
            continue

        start = max(event.at, busy_until[shard])
        plan = tables[shard].lookup(key)
        if plan is not None:
            service_s = model.overhead_s + model.kernel_time(event.n)
        elif event.deadline_s is not None:
            # cold + deadline: the live tier degrades rather than tunes
            service_s = model.overhead_s + model.kernel_time(event.n, fallback=True)
            fallbacks += 1
            telemetry.incr("serve.fallbacks")
        else:
            service_s = (
                model.overhead_s + model.tune_cost_s + model.kernel_time(event.n)
            )
            tunes += 1
            telemetry.incr("serve.tuned")
            tables[shard].insert(Plan(key, _ModeledRoutine(key[0], key[2])))

        finish = start + service_s
        busy_until[shard] = finish
        starts.append(start)
        latencies.append(finish - event.at)
        per_shard_completed[shard] += 1
        last_finish = max(last_finish, finish)

    latencies.sort()
    makespan = last_finish if last_finish > 0 else 1e-9
    duration = trace[-1].at if trace else 1e-9
    return ReplayReport(
        shards=shards,
        shed_high_water=shed_high_water,
        offered=len(trace),
        offered_qps=len(trace) / max(duration, 1e-9),
        completed=len(latencies),
        shed=shed,
        fallbacks=fallbacks,
        tunes=tunes,
        sustained_qps=len(latencies) / makespan,
        p50_ms=_percentile(latencies, 0.50) * 1e3,
        p99_ms=_percentile(latencies, 0.99) * 1e3,
        max_ms=(latencies[-1] * 1e3) if latencies else 0.0,
        makespan_s=makespan,
        max_queue_depth=max_depth,
        per_shard_completed=per_shard_completed,
    )
