"""Admission control for the sharded serving tier.

A loaded shard that keeps accepting work converts overload into
unbounded queue wait: every queued request's latency grows with the
backlog, and the tail (p99) grows fastest.  The admission controller
bounds that tail by *shedding* — rejecting new requests at the door once
a shard's queue depth reaches a high-water mark.  A shed request is
answered instantly with ``Response(source="shed")`` (its ``result()``
raises :class:`~repro.serve.request.ServeError`), which callers can
retry, redirect, or degrade on — a fast, explicit "no" instead of a
slow, implicit "yes".

Counters: ``serve.shed`` (total rejections) and ``serve.shard.<i>.shed``
(per shard), so dashboards can tell a single hot shard from tier-wide
overload.
"""

from __future__ import annotations

from typing import Optional

from ..telemetry import Telemetry, ensure_telemetry

__all__ = ["AdmissionController"]


class AdmissionController:
    """Queue-depth load shedding for one tier of dispatcher shards.

    ``high_water`` is the per-shard queue depth at which new requests
    are rejected; ``None`` admits everything (the controller becomes a
    pass-through that still counts admissions).
    """

    def __init__(
        self,
        high_water: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if high_water is not None and high_water < 1:
            raise ValueError("admission high_water must be >= 1 (or None)")
        self.high_water = high_water
        self.telemetry = ensure_telemetry(telemetry)
        self.admitted = 0
        self.shed = 0

    def admit(self, shard_index: int, queue_depth: int) -> bool:
        """Whether a request may enter the shard's queue at this depth."""
        if self.high_water is not None and queue_depth >= self.high_water:
            self.shed += 1
            self.telemetry.incr("serve.shed")
            self.telemetry.incr(f"serve.shard.{shard_index}.shed")
            return False
        self.admitted += 1
        return True
