"""Request/response records of the BLAS3 serving runtime.

A :class:`Request` is one BLAS3 call in flight: the routine, its arrays,
its scaling factors and an optional per-request deadline (a *relative*
budget in seconds from submission).  The service answers with a
:class:`Response`, delivered through a :class:`PendingResult` — a
one-shot future the submitting thread blocks on.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["Request", "Response", "PendingResult", "ServeError", "as_completed"]


class ServeError(RuntimeError):
    """A request failed inside the service (carried via Response.error)."""


@dataclass
class Request:
    """One submitted BLAS3 call."""

    id: int
    routine: str
    arrays: Dict[str, np.ndarray]
    alpha: float = 1.0
    beta: float = 1.0
    sizes: Optional[Dict[str, int]] = None
    #: relative deadline budget in seconds (None = no deadline)
    deadline_s: Optional[float] = None
    #: service clock reading at submit time
    submitted_at: float = 0.0
    #: the :class:`repro.dag.Dag` behind this request.  Single calls
    #: carry their one-node DAG; multi-node requests additionally set
    #: ``routine`` to ``dag.routine_key`` and ``sizes`` to
    #: ``dag.canonical_sizes`` so dispatch keys on graph structure.
    dag: Optional[object] = None

    @property
    def chained(self) -> bool:
        """Whether this request is a multi-node DAG (chain) request."""
        return self.dag is not None and len(self.dag) > 1

    def group_key(self) -> Tuple:
        """Coalescing key: requests agreeing on it batch into one launch.

        Same routine, same array shapes, same scaling — the dispatch
        work (plan lookup, sizing, bucketing) is identical for every
        member, so the batch pays it once.  Deadline *presence* is part
        of the key: plan resolution branches on whether the head can
        afford a cold tune, so a deadline-bound head must never decide
        for deadline-free riders (or vice versa).  The budget value
        itself stays out — same-presence requests resolve identically
        and per-request expiry is checked at serve time.
        """
        shapes = tuple(
            (name, np.asarray(arr).shape) for name, arr in sorted(self.arrays.items())
        )
        sizes = tuple(sorted(self.sizes.items())) if self.sizes else None
        return (
            self.routine,
            shapes,
            sizes,
            self.alpha,
            self.beta,
            self.deadline_s is not None,
        )

    def expired(self, now: float) -> bool:
        """Whether the deadline budget is spent at clock reading ``now``."""
        return self.deadline_s is not None and (now - self.submitted_at) > self.deadline_s

    def pack_key(self, max_dim: int = 64) -> Optional[Tuple]:
        """Shape-*class* coalescing key for cross-request packing.

        Where :meth:`group_key` requires identical shapes,
        ``pack_key`` buckets small GEMM calls by the power-of-two
        ceiling of their *largest* dimension — the same class the
        dispatch table buckets by, so every member of a pack class
        already shares a plan.  Requests agreeing on it can ride one
        strided-batched (BGEMM) launch, zero-padded to the batch's
        per-dimension maxima.  Returns ``None`` for calls that cannot
        pack — non-GEMM routines, or any dimension above ``max_dim``
        (padding waste grows with the class size; large calls saturate
        the GPU alone).

        Deadline *presence* stays part of the key for the same reason
        it is part of ``group_key``: resolving the batched plan
        branches on whether the batch can afford a cold tune.
        """
        family = self.routine.split("-", 1)[0]
        if family != "GEMM":
            return None
        from ..blas3.routines import get_spec, infer_sizes

        try:
            sizes = (
                dict(self.sizes)
                if self.sizes is not None
                else infer_sizes(get_spec(self.routine), self.arrays)
            )
        except Exception:
            return None
        dims = [int(v) for k, v in sizes.items() if k != "P"]
        if not dims or max(dims) > max_dim or min(dims) < 1:
            return None
        largest = max(dims)
        bucket = 1 << (largest - 1).bit_length() if largest > 1 else 1
        return (self.routine, bucket, self.deadline_s is not None)


@dataclass
class Response:
    """The service's answer to one request."""

    request_id: int
    routine: str
    output: Optional[np.ndarray] = None
    #: "tuned" (hot/lazily-tuned plan), "fallback" (baseline kernel),
    #: "error" (the request failed; see :attr:`error`) or "shed"
    #: (rejected by admission control before reaching a dispatcher)
    source: str = "tuned"
    #: why the baseline answered, when it did ("deadline" | "no-plan")
    fallback_reason: Optional[str] = None
    #: size of the coalesced launch this request rode in
    batch_size: int = 1
    #: queue wait (submit → launch start) and total (submit → done)
    wait_s: float = 0.0
    total_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class PendingResult:
    """One-shot future for a submitted request."""

    def __init__(self, request_id: int, telemetry=None):
        self.request_id = request_id
        self._event = threading.Event()
        self._response: Optional[Response] = None
        self._lock = threading.Lock()
        self._callbacks: List[Callable[["PendingResult"], None]] = []
        self._telemetry = telemetry

    def done(self) -> bool:
        return self._event.is_set()

    def fulfill(self, response: Response) -> None:
        with self._lock:
            self._response = response
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        # Callbacks run on the fulfilling (dispatcher) thread.  Each is
        # isolated: one raising callback must not swallow its siblings
        # or propagate into the serving loop and kill the dispatcher.
        # Counter: ``serve.callback_errors``.
        for callback in callbacks:
            try:
                callback(self)
            except Exception:
                if self._telemetry is not None:
                    self._telemetry.incr("serve.callback_errors")

    def add_done_callback(
        self, callback: Callable[["PendingResult"], None]
    ) -> None:
        """Invoke ``callback(self)`` once the response lands.

        The non-blocking completion surface: callbacks registered before
        fulfilment run on the fulfilling (dispatcher) thread, in
        registration order; registering after fulfilment invokes the
        callback immediately on the caller's thread.  Callbacks should be
        quick and must not block — they run inside the serving loop.
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def response(self, timeout: Optional[float] = None) -> Response:
        """Block for the response without raising on failure.

        The inspection surface: shed and errored responses come back as
        values (check :attr:`Response.source` / :attr:`Response.error`),
        where :meth:`result` would raise :class:`ServeError`.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} still pending after {timeout}s"
            )
        assert self._response is not None
        return self._response

    def result(self, timeout: Optional[float] = None) -> Response:
        """Block for the response; raises :class:`ServeError` on failure."""
        response = self.response(timeout)
        if response.error is not None:
            raise ServeError(response.error)
        return response

    def output(self, timeout: Optional[float] = None) -> np.ndarray:
        """The result array (blocking convenience over :meth:`result`)."""
        return self.result(timeout).output


def as_completed(
    pendings: Iterable[PendingResult], timeout: Optional[float] = None
) -> Iterator[PendingResult]:
    """Yield each :class:`PendingResult` as its response lands.

    Completion order, not submission order — the async consumption
    surface for fan-out submitters::

        pendings = [service.submit(...) for _ in range(64)]
        for pending in as_completed(pendings):
            handle(pending.result())

    ``timeout`` bounds the *total* wait; expiry raises
    :class:`TimeoutError` naming how many results were still pending.
    """
    pendings = list(pendings)
    ready: "queue.Queue[PendingResult]" = queue.Queue()
    for pending in pendings:
        pending.add_done_callback(ready.put)
    deadline = None if timeout is None else time.monotonic() + timeout
    for remaining in range(len(pendings), 0, -1):
        wait = None if deadline is None else deadline - time.monotonic()
        if wait is not None and wait <= 0:
            # The budget is spent, but results that already landed must
            # still drain: a consumer that was busy handling earlier
            # results would otherwise lose responses that arrived in
            # time just because the *clock check* came late.
            try:
                yield ready.get_nowait()
                continue
            except queue.Empty:
                raise TimeoutError(
                    f"{remaining} result(s) still pending after {timeout}s"
                ) from None
        try:
            yield ready.get(timeout=wait)
        except queue.Empty:
            raise TimeoutError(
                f"{remaining} result(s) still pending after {timeout}s"
            ) from None
