"""Request/response records of the BLAS3 serving runtime.

A :class:`Request` is one BLAS3 call in flight: the routine, its arrays,
its scaling factors and an optional per-request deadline (a *relative*
budget in seconds from submission).  The service answers with a
:class:`Response`, delivered through a :class:`PendingResult` — a
one-shot future the submitting thread blocks on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["Request", "Response", "PendingResult", "ServeError"]


class ServeError(RuntimeError):
    """A request failed inside the service (carried via Response.error)."""


@dataclass
class Request:
    """One submitted BLAS3 call."""

    id: int
    routine: str
    arrays: Dict[str, np.ndarray]
    alpha: float = 1.0
    beta: float = 1.0
    sizes: Optional[Dict[str, int]] = None
    #: relative deadline budget in seconds (None = no deadline)
    deadline_s: Optional[float] = None
    #: service clock reading at submit time
    submitted_at: float = 0.0

    def group_key(self) -> Tuple:
        """Coalescing key: requests agreeing on it batch into one launch.

        Same routine, same array shapes, same scaling — the dispatch
        work (plan lookup, sizing, bucketing) is identical for every
        member, so the batch pays it once.
        """
        shapes = tuple(
            (name, np.asarray(arr).shape) for name, arr in sorted(self.arrays.items())
        )
        sizes = tuple(sorted(self.sizes.items())) if self.sizes else None
        return (self.routine, shapes, sizes, self.alpha, self.beta)

    def expired(self, now: float) -> bool:
        """Whether the deadline budget is spent at clock reading ``now``."""
        return self.deadline_s is not None and (now - self.submitted_at) > self.deadline_s


@dataclass
class Response:
    """The service's answer to one request."""

    request_id: int
    routine: str
    output: Optional[np.ndarray] = None
    #: "tuned" (hot/lazily-tuned plan) or "fallback" (baseline kernel)
    source: str = "tuned"
    #: why the baseline answered, when it did ("deadline" | "no-plan")
    fallback_reason: Optional[str] = None
    #: size of the coalesced launch this request rode in
    batch_size: int = 1
    #: queue wait (submit → launch start) and total (submit → done)
    wait_s: float = 0.0
    total_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class PendingResult:
    """One-shot future for a submitted request."""

    def __init__(self, request_id: int):
        self.request_id = request_id
        self._event = threading.Event()
        self._response: Optional[Response] = None

    def done(self) -> bool:
        return self._event.is_set()

    def fulfill(self, response: Response) -> None:
        self._response = response
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> Response:
        """Block for the response; raises :class:`ServeError` on failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} still pending after {timeout}s"
            )
        assert self._response is not None
        if self._response.error is not None:
            raise ServeError(self._response.error)
        return self._response

    def output(self, timeout: Optional[float] = None) -> np.ndarray:
        """The result array (blocking convenience over :meth:`result`)."""
        return self.result(timeout).output
