"""Micro-batching queue of the serving runtime.

Concurrent same-shape requests coalesce into one simulated-GPU launch:
the batcher holds the FIFO of pending requests and, on drain, pulls the
head request plus every queued request sharing its
:meth:`~repro.serve.request.Request.group_key` (up to ``max_batch``).
Submission order is preserved both across batches (the head picks the
group) and within a batch, so serving is deterministic regardless of
how submitter threads interleave.

The *window* — how long the dispatcher waits for same-shape company
before launching — is the service loop's concern
(:class:`~repro.serve.service.BlasService`); the batcher itself is a
pure data structure guarded by the service's lock.
"""

from __future__ import annotations

from typing import List, Optional

from .request import Request

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """FIFO request queue with same-shape batch extraction.

    With ``pack=True`` a second coalescing tier activates: when the
    head's exact-shape group leaves the batch under-full, queued small
    GEMM calls sharing the head's :meth:`~Request.pack_key` shape
    *class* (same routine, different data, possibly different shapes)
    join as riders — the service pads them into one strided-batched
    launch.  Exact-group members always outrank riders, and both tiers
    preserve submission order, so extraction stays deterministic.
    """

    def __init__(self, max_batch: int = 8, pack: bool = False, pack_max_dim: int = 64):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.pack = pack
        self.pack_max_dim = pack_max_dim
        self._queue: List[Request] = []
        #: deepest the queue has ever been (telemetry gauge)
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._queue)

    def append(self, request: Request) -> None:
        self._queue.append(request)
        self.peak_depth = max(self.peak_depth, len(self._queue))

    def head(self) -> Optional[Request]:
        return self._queue[0] if self._queue else None

    def matching_head(self) -> int:
        """How many queued requests would join the head's batch now."""
        if not self._queue:
            return 0
        key = self._queue[0].group_key()
        count = sum(1 for r in self._queue if r.group_key() == key)
        if self.pack:
            pkey = self._queue[0].pack_key(self.pack_max_dim)
            if pkey is not None:
                count += sum(
                    1
                    for r in self._queue
                    if r.group_key() != key
                    and r.pack_key(self.pack_max_dim) == pkey
                )
        return count

    def next_batch(self) -> List[Request]:
        """Extract the head request's group, preserving queue order.

        Pack mode then tops an under-full batch up with shape-class
        riders (see class docstring), again in queue order.
        """
        if not self._queue:
            return []
        key = self._queue[0].group_key()
        batch: List[Request] = []
        rest: List[Request] = []
        for request in self._queue:
            if len(batch) < self.max_batch and request.group_key() == key:
                batch.append(request)
            else:
                rest.append(request)
        if self.pack and len(batch) < self.max_batch:
            pkey = batch[0].pack_key(self.pack_max_dim)
            if pkey is not None:
                keep: List[Request] = []
                for request in rest:
                    if (
                        len(batch) < self.max_batch
                        and request.pack_key(self.pack_max_dim) == pkey
                    ):
                        batch.append(request)
                    else:
                        keep.append(request)
                rest = keep
        self._queue = rest
        return batch
