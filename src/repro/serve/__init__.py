"""The BLAS3 serving runtime: dispatch, micro-batching, fallback.

The runtime layer over the generated library — see
:mod:`repro.serve.service` for the architecture overview and the
README's "Serving" section for the quickstart and counter glossary.
"""

from .batching import MicroBatcher
from .dispatch import DispatchTable, Plan, PlanKey, size_bucket
from .request import PendingResult, Request, Response, ServeError
from .service import BlasService, PlanUnavailableError, ServeOptions

__all__ = [
    "BlasService",
    "DispatchTable",
    "MicroBatcher",
    "PendingResult",
    "Plan",
    "PlanKey",
    "PlanUnavailableError",
    "Request",
    "Response",
    "ServeError",
    "ServeOptions",
    "size_bucket",
]
