"""The BLAS3 serving runtime: dispatch, micro-batching, fallback.

The runtime layer over the generated library — see
:mod:`repro.serve.service` for the architecture overview and the
README's "Serving" section for the quickstart and counter glossary.
"""

from .admission import AdmissionController
from .batching import MicroBatcher
from .dispatch import DispatchTable, Plan, PlanKey, size_bucket
from .request import PendingResult, Request, Response, ServeError, as_completed
from .service import BlasService, PlanUnavailableError, ServeOptions
from .shard import ShardedBlasService, ShardRouter

__all__ = [
    "AdmissionController",
    "BlasService",
    "DispatchTable",
    "MicroBatcher",
    "PendingResult",
    "Plan",
    "PlanKey",
    "PlanUnavailableError",
    "Request",
    "Response",
    "ServeError",
    "ServeOptions",
    "ShardRouter",
    "ShardedBlasService",
    "as_completed",
    "size_bucket",
]
