"""Sharded serving tier: consistent-hash routing over dispatcher shards.

One :class:`~repro.serve.service.BlasService` serializes every launch
through a single dispatcher, so its throughput ceiling is one worker's.
This module scales the serving runtime *out*: a
:class:`ShardedBlasService` runs N independent ``BlasService`` workers
(each with its own dispatcher thread, micro-batcher and hot-plan table)
behind one ingress, and routes every request by consistent hashing on
``(routine, size-bucket)``.

Why consistent hashing rather than round-robin:

* **plan affinity** — all traffic for one ``(routine, bucket)`` lands on
  one shard, so each plan is tuned *once* by exactly one worker and its
  micro-batcher still sees coalescable same-shape company.  Round-robin
  would tune every plan on every shard and split batches N ways.
* **elasticity** — adding a shard remaps only ~1/N of the key space
  (the ring property), so a resize invalidates few warm plans, and the
  newcomers rehydrate those from the persisted plan snapshot
  (:meth:`ShardedBlasService.rehydrate_plans`) instead of re-tuning.

The ingress applies admission control before enqueueing: when the owner
shard's queue depth is at the ``shed_high_water`` mark, the request is
*shed* — answered immediately with ``Response(source="shed")`` rather
than deepening an already-overloaded queue (see
:mod:`repro.serve.admission`).

Counters: ``serve.shard.routed``, ``serve.shard.<i>.routed``,
``serve.shed``, ``serve.shard.<i>.shed``, ``serve.snapshot.stored``,
``serve.rehydrated``.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import time
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from ..blas3.routines import get_spec, infer_sizes
from ..dag import Dag, Expr
from ..gpu.arch import GPUArch, GTX_285
from ..telemetry import Telemetry, ensure_telemetry
from ..tuner.options import TuningOptions
from .admission import AdmissionController
from .dispatch import Plan, PlanKey, size_bucket
from .request import PendingResult, Response
from .service import BlasService, ServeOptions

__all__ = ["ShardRouter", "ShardedBlasService"]


def _point(token: str) -> int:
    """Stable 64-bit ring position (process- and run-independent)."""
    return int.from_bytes(
        hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest(), "big"
    )


class ShardRouter:
    """Consistent-hash ring mapping ``(routine, bucket)`` → shard index.

    Each shard owns ``replicas`` virtual nodes on a 64-bit ring; a key
    routes to the first node clockwise of its hash.  Virtual nodes keep
    ownership balanced, and the ring keeps it *stable*: growing from N
    to N+1 shards reassigns only the slice the newcomer's nodes carve
    out (~1/(N+1) of the key space) — every other key keeps its shard,
    and therefore its warm plan.
    """

    def __init__(self, shards: int, replicas: int = 64):
        if shards < 1:
            raise ValueError("ShardRouter needs shards >= 1")
        if replicas < 1:
            raise ValueError("ShardRouter needs replicas >= 1")
        self.shards = shards
        self.replicas = replicas
        ring = sorted(
            (_point(f"shard-{shard}/{replica}"), shard)
            for shard in range(shards)
            for replica in range(replicas)
        )
        self._points = [point for point, _ in ring]
        self._owners = [shard for _, shard in ring]

    def route(self, routine: str, bucket: int) -> int:
        """The shard owning ``(routine, bucket)``."""
        point = _point(f"{routine}:{int(bucket)}")
        index = bisect.bisect_right(self._points, point) % len(self._points)
        return self._owners[index]

    def owner_predicate(self, shard: int) -> Callable[[PlanKey], bool]:
        """Filter for :meth:`BlasService.rehydrate_plans`: keys this
        shard owns (the arch component is routing-irrelevant)."""
        return lambda key: self.route(key[0], key[2]) == shard

    def ownership(self, keys) -> Dict[int, List]:
        """Group ``(routine, bucket)`` pairs by owning shard."""
        owned: Dict[int, List] = {shard: [] for shard in range(self.shards)}
        for routine, bucket in keys:
            owned[self.route(routine, bucket)].append((routine, bucket))
        return owned


class ShardedBlasService:
    """N dispatcher shards behind one consistent-hash ingress.

    The submission surface mirrors :class:`BlasService` (``submit`` /
    ``run`` / ``warm`` / ``flush`` / context manager); results are the
    same :class:`PendingResult` futures, so
    :func:`repro.serve.request.as_completed` consumes fan-out traffic
    across shards unchanged.  All shards share one telemetry stream and
    one tuning cache directory, and differ only in which slice of the
    key space they own.
    """

    def __init__(
        self,
        arch: GPUArch = GTX_285,
        shards: int = 2,
        *,
        options: Optional[ServeOptions] = None,
        tuning: Optional[TuningOptions] = None,
        telemetry: Optional[Telemetry] = None,
        clock=time.monotonic,
        replicas: int = 64,
    ):
        self.arch = arch
        self.options = options or ServeOptions()
        self.tuning = tuning or TuningOptions()
        self.telemetry = ensure_telemetry(telemetry)
        self.clock = clock
        self.router = ShardRouter(shards, replicas=replicas)
        self.admission = AdmissionController(
            self.options.shed_high_water, telemetry=self.telemetry
        )
        self.workers: List[BlasService] = [
            BlasService(
                arch,
                options=self.options,
                tuning=self.tuning,
                telemetry=self.telemetry,
                clock=clock,
            )
            for _ in range(shards)
        ]
        self._shed_ids = itertools.count(1)

    @property
    def shards(self) -> int:
        return len(self.workers)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ShardedBlasService":
        for worker in self.workers:
            worker.start()
        return self

    def close(self) -> None:
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "ShardedBlasService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingress -------------------------------------------------------
    def route(
        self, routine: str, sizes: Mapping[str, int]
    ) -> int:
        """The shard a call with these sizes routes to."""
        return self.router.route(get_spec(routine).name, size_bucket(sizes))

    def submit(
        self,
        routine: str,
        *,
        alpha: float = 1.0,
        beta: float = 1.0,
        sizes: Optional[Mapping[str, int]] = None,
        deadline_s: Optional[float] = None,
        **arrays: np.ndarray,
    ) -> PendingResult:
        """Route one call to its owner shard (or shed it at the door)."""
        spec = get_spec(routine)
        if sizes is None:
            sizes = infer_sizes(spec, {k: np.asarray(v) for k, v in arrays.items()})
        bucket = size_bucket(sizes)
        shard = self.router.route(spec.name, bucket)
        self.telemetry.incr("serve.shard.routed")
        self.telemetry.incr(f"serve.shard.{shard}.routed")
        worker = self.workers[shard]
        depth = worker.queue_depth()
        if not self.admission.admit(shard, depth):
            return self._shed(spec.name, shard, depth)
        return worker.submit(
            routine,
            alpha=alpha,
            beta=beta,
            sizes=sizes,
            deadline_s=deadline_s,
            **arrays,
        )

    def submit_dag(
        self,
        dag: "Dag | Expr",
        *,
        deadline_s: Optional[float] = None,
        **arrays: np.ndarray,
    ) -> PendingResult:
        """Route one DAG request to its owner shard (or shed it).

        Multi-node DAGs route by ``(dag.routine_key, size-bucket)`` —
        the same consistent-hash key discipline as single calls, so all
        traffic for one DAG shape lands on one shard and its chain plan
        is tuned exactly once.  One-node DAGs delegate to
        :meth:`submit` and route like the plain call they are.
        """
        dag = dag if isinstance(dag, Dag) else Dag(dag)
        if len(dag) == 1:
            node = dag.nodes[0]
            return self.submit(
                node.routine,
                alpha=node.alpha,
                beta=node.beta,
                deadline_s=deadline_s,
                **{op: arrays[sym] for op, sym in node.operands.items()},
            )
        sizes = dag.canonical_sizes(
            {k: np.asarray(v) for k, v in arrays.items()}
        )
        bucket = size_bucket(sizes)
        shard = self.router.route(dag.routine_key, bucket)
        self.telemetry.incr("serve.shard.routed")
        self.telemetry.incr(f"serve.shard.{shard}.routed")
        worker = self.workers[shard]
        depth = worker.queue_depth()
        if not self.admission.admit(shard, depth):
            return self._shed(dag.routine_key, shard, depth)
        return worker.submit_dag(dag, deadline_s=deadline_s, **arrays)

    def run_dag(
        self,
        dag: "Dag | Expr",
        *,
        deadline_s: Optional[float] = None,
        **arrays: np.ndarray,
    ) -> np.ndarray:
        """Submit one DAG request and block for its result array."""
        pending = self.submit_dag(dag, deadline_s=deadline_s, **arrays)
        if not pending.done():
            self.flush()
        return pending.output()

    def _shed(self, routine: str, shard: int, depth: int) -> PendingResult:
        """Instant rejection: a pre-fulfilled future, never enqueued."""
        request_id = -next(self._shed_ids)  # negative: never a worker id
        pending = PendingResult(request_id)
        pending.fulfill(
            Response(
                request_id=request_id,
                routine=routine,
                output=None,
                source="shed",
                error=(
                    f"shed: shard {shard} queue depth {depth} >= "
                    f"high-water {self.admission.high_water}"
                ),
            )
        )
        return pending

    def run(
        self,
        routine: str,
        *,
        alpha: float = 1.0,
        beta: float = 1.0,
        sizes: Optional[Mapping[str, int]] = None,
        deadline_s: Optional[float] = None,
        **arrays: np.ndarray,
    ) -> np.ndarray:
        """Submit one call and block for its result array."""
        pending = self.submit(
            routine,
            alpha=alpha,
            beta=beta,
            sizes=sizes,
            deadline_s=deadline_s,
            **arrays,
        )
        if not pending.done():
            self.flush()
        return pending.output()

    def flush(self) -> int:
        """Drain every shard inline; returns total launches run."""
        return sum(worker.flush() for worker in self.workers)

    def warm(self, routine: str, n: int) -> Plan:
        """Pre-tune on the owner shard (where traffic will route)."""
        spec = get_spec(routine)
        shard = self.router.route(spec.name, size_bucket(spec.make_sizes(n)))
        return self.workers[shard].warm(routine, n)

    def queue_depths(self) -> List[int]:
        """Current queue depth per shard (the admission signal)."""
        return [worker.queue_depth() for worker in self.workers]

    def stats(self) -> Dict:
        """Tier snapshot: shared counters + per-shard table/queue state."""
        per_shard = []
        for worker in self.workers:
            with worker._lock:
                depth = len(worker._batcher)
                peak = worker._batcher.peak_depth
            per_shard.append(
                {"plans": len(worker.table), "queue_depth": depth,
                 "peak_queue_depth": peak}
            )
        return {
            "shards": self.shards,
            "counters": self.telemetry.metrics.snapshot(),
            "shed": self.admission.shed,
            "per_shard": per_shard,
        }

    # -- snapshot / rehydration ----------------------------------------
    def snapshot_plans(self, tag: str = "serve") -> int:
        """Persist every shard's verified plans as ONE snapshot document.

        A single combined document means a restarted or *re-sized* tier
        rehydrates from one place: each worker filters the document by
        its own ring ownership, so the same snapshot serves 1 shard or
        8.  Returns the number of plans stored.
        """
        cache = self.workers[0]._snapshot_cache()
        if cache is None:
            return 0
        records: List[Dict] = []
        seen = set()
        for worker in self.workers:
            for record in worker.plan_records():
                key = (record["routine"], record["bucket"])
                if key in seen:
                    continue
                seen.add(key)
                records.append(record)
        cache.store_plan_snapshot(self.arch, tag, records)
        self.telemetry.incr("serve.snapshot.stored", len(records))
        return len(records)

    def rehydrate_plans(self, tag: str = "serve") -> int:
        """Each shard loads the keys it owns from the shared snapshot.

        The restart/rescale path: a fresh tier (possibly with a
        different shard count) calls this once and every worker's
        dispatch table is hot for its slice of the key space — no
        re-tuning, no cross-shard duplication.  Returns total plans
        loaded.  Counter: ``serve.rehydrated``.
        """
        return sum(
            worker.rehydrate_plans(tag, only=self.router.owner_predicate(shard))
            for shard, worker in enumerate(self.workers)
        )
