"""Dispatch table of the serving runtime: size buckets + LRU hot plans.

The runtime keys tuned plans on ``(routine, arch, size-bucket)``.  The
bucket is the power-of-two ceiling of the call's largest dimension, so
requests of similar magnitude share a plan tuned *at that magnitude* —
the model-driven adaptive-library idea (Cianfriglia et al., PAPERS.md):
the winning (script, config) pair at N=64 is generally not the winner at
N=4096, so one plan per size class keeps every class near its optimum.

The table is a bounded LRU: serving traffic touches a working set of
(routine, bucket) combinations, and the LRU keeps the hot ones resident
while cold plans age out (they remain reconstructable from the PR 2
on-disk tuning cache at plan-miss cost, not search cost).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from ..telemetry import Telemetry, ensure_telemetry
from ..tuner.library import TunedRoutine

__all__ = ["size_bucket", "PlanKey", "Plan", "DispatchTable"]

#: (routine, arch name, size bucket)
PlanKey = Tuple[str, str, int]

#: Smallest bucket — calls tinier than this share the 16-class plan
#: (tile sizes below 16 are outside every platform's useful range).
MIN_BUCKET = 16


def size_bucket(sizes: Mapping[str, int], floor: int = MIN_BUCKET) -> int:
    """Power-of-two ceiling of the largest *spatial* dimension.

    The batch count ``P`` is excluded: a strided-batched call of 64
    tiny problems is still a small-tile problem, and must share a plan
    with (and tune like) its single-problem shape class.

    ``floor`` is the smallest bucket the caller serves.  The default
    stays :data:`MIN_BUCKET` = 16; a service configured with
    ``ServeOptions.min_bucket < 16`` passes a lower floor so N ≤ 8
    calls get a dedicated sub-16 plan instead of sharing the 16-class
    one (see :func:`repro.tuner.space.small_space`).
    """
    spatial = [v for k, v in sizes.items() if k != "P"] or list(sizes.values())
    largest = max(spatial)
    if largest <= floor:
        return int(floor)
    return 1 << (int(largest) - 1).bit_length()


@dataclass
class Plan:
    """One resident tuned plan plus its serving statistics."""

    key: PlanKey
    tuned: TunedRoutine
    hits: int = 0
    #: built by the cost model's instant-plan path (no search ran);
    #: replaced by the fully tuned plan when background tuning finishes
    predicted: bool = False

    @property
    def routine(self) -> str:
        return self.key[0]

    @property
    def bucket(self) -> int:
        return self.key[2]


class DispatchTable:
    """LRU-bounded map of :data:`PlanKey` → :class:`Plan`.

    ``lookup`` both reports and *re-heats* (moves to the MRU end);
    ``insert`` evicts the least-recently-used plan beyond ``capacity``.
    Counters: ``serve.plan.hit`` / ``serve.plan.miss`` /
    ``serve.plan.evict``.

    The table carries its own lock: it is probed concurrently by the
    dispatcher thread and by caller threads (``warm()``, ``flush()``
    racing ``close()``), and in the sharded tier by rehydration — the
    LRU's get + move_to_end pair and the insert + evict pair must be
    atomic against each other or the ``OrderedDict`` corrupts.
    """

    def __init__(self, capacity: int = 64, telemetry: Optional[Telemetry] = None):
        if capacity < 1:
            raise ValueError("DispatchTable needs capacity >= 1")
        self.capacity = capacity
        self.telemetry = ensure_telemetry(telemetry)
        self._plans: "OrderedDict[PlanKey, Plan]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._plans

    def keys(self):
        """Plan keys, coldest first."""
        with self._lock:
            return list(self._plans)

    def plans(self) -> List[Plan]:
        """Resident plans, coldest first (snapshot/rehydration surface)."""
        with self._lock:
            return list(self._plans.values())

    def lookup(self, key: PlanKey) -> Optional[Plan]:
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.telemetry.incr("serve.plan.miss")
                return None
            self._plans.move_to_end(key)
            plan.hits += 1
        self.telemetry.incr("serve.plan.hit")
        return plan

    def peek(self, key: PlanKey) -> Optional[Plan]:
        """Report residency without re-heating the LRU or counting a
        hit/miss — the inspection surface for background promotion,
        which must not distort serving statistics."""
        with self._lock:
            return self._plans.get(key)

    def insert(self, plan: Plan) -> None:
        evicted = 0
        with self._lock:
            self._plans[plan.key] = plan
            self._plans.move_to_end(plan.key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                evicted += 1
        if evicted:
            self.telemetry.incr("serve.plan.evict", evicted)
