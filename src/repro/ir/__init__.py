"""Polyhedral-lite loop-nest IR (the substrate the EPOD translator rewrites).

Public surface:

* :mod:`repro.ir.affine` — affine expressions and min/max bounds.
* :mod:`repro.ir.ast` — loops, statements, guards, arrays, computations.
* :mod:`repro.ir.builder` — programmatic builders and the labeled-source
  parser used to write routines the way the paper prints them.
* :mod:`repro.ir.printer` — C-like pretty printer.
* :mod:`repro.ir.dependence` — PolyDeps-like dependence analysis.
* :mod:`repro.ir.interpret` — sequential functional oracle.
* :mod:`repro.ir.validate` — structural invariants.
"""

from .affine import AffineExpr, Bound, MaxExpr, MinExpr, aff, bound_max, bound_min, const, var
from .ast import (
    And,
    Array,
    ArrayRef,
    Assign,
    Barrier,
    BinOp,
    Cmp,
    Computation,
    Const,
    Expr,
    Flag,
    GRID_DIMS,
    Guard,
    Loop,
    Neg,
    Node,
    Predicate,
    Recip,
    ScalarRef,
    Stage,
    THREAD_DIMS,
    fresh_label,
)
from .builder import (
    ParseError,
    build_computation,
    parse_affine,
    parse_expr,
    parse_labeled_source,
)
from .dependence import (
    Dependence,
    analyze_dependences,
    banerjee_test,
    carries_dependence,
    fusion_legal,
    gcd_test,
    interchange_legal,
    may_alias,
)
from .interpret import allocate_arrays, interpret
from .printer import print_body, print_computation, print_stage, print_stmt
from .rename import rename_computation
from .validate import ValidationError, validate

__all__ = [
    # affine
    "AffineExpr",
    "Bound",
    "MaxExpr",
    "MinExpr",
    "aff",
    "bound_max",
    "bound_min",
    "const",
    "var",
    # ast
    "And",
    "Array",
    "ArrayRef",
    "Assign",
    "Barrier",
    "BinOp",
    "Cmp",
    "Computation",
    "Const",
    "Expr",
    "Flag",
    "GRID_DIMS",
    "Guard",
    "Loop",
    "Neg",
    "Node",
    "Predicate",
    "Recip",
    "ScalarRef",
    "Stage",
    "THREAD_DIMS",
    "fresh_label",
    # builder
    "ParseError",
    "build_computation",
    "parse_affine",
    "parse_expr",
    "parse_labeled_source",
    # dependence
    "Dependence",
    "analyze_dependences",
    "banerjee_test",
    "may_alias",
    "carries_dependence",
    "fusion_legal",
    "gcd_test",
    "interchange_legal",
    # interpret
    "allocate_arrays",
    "interpret",
    # rename
    "rename_computation",
    # printer
    "print_body",
    "print_computation",
    "print_stage",
    "print_stmt",
    # validate
    "ValidationError",
    "validate",
]
