"""C-like pretty printer for the loop-nest IR.

Produces the "labeled source code" notation used throughout the paper
(Fig. 3, Fig. 14): loop labels in front of ``for`` headers, BLAS-style
bracketed subscripts, ``min``/``max`` bounds spelled out.
"""

from __future__ import annotations

from typing import List, Sequence

from .affine import MaxExpr, MinExpr
from .ast import (
    ArrayRef,
    Assign,
    Barrier,
    BinOp,
    Computation,
    Const,
    Expr,
    Guard,
    Loop,
    Neg,
    Node,
    Recip,
    ScalarRef,
    Stage,
)

__all__ = ["print_expr", "print_stmt", "print_body", "print_stage", "print_computation"]

_INDENT = "    "


def print_bound(bound) -> str:
    if isinstance(bound, (MinExpr, MaxExpr)):
        return str(bound)
    return str(bound)


def print_expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        value = expr.value
        return str(int(value)) if value == int(value) else repr(value)
    if isinstance(expr, ScalarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        return expr.array + "".join(f"[{i}]" for i in expr.indices)
    if isinstance(expr, BinOp):
        return f"({print_expr(expr.left)} {expr.op} {print_expr(expr.right)})"
    if isinstance(expr, Neg):
        return f"(-{print_expr(expr.operand)})"
    if isinstance(expr, Recip):
        return f"(1.0f / {print_expr(expr.operand)})"
    raise TypeError(f"cannot print {expr!r}")


def print_stmt(stmt: Assign) -> str:
    return f"{print_expr(stmt.target)} {stmt.op} {print_expr(stmt.expr)};"


def _loop_header(loop: Loop) -> str:
    step = f"{loop.var} += {loop.step}" if loop.step != 1 else f"{loop.var}++"
    header = (
        f"for ({loop.var} = {print_bound(loop.lower)}; "
        f"{loop.var} < {print_bound(loop.upper)}; {step})"
    )
    tags = []
    if loop.mapped_to:
        tags.append(f"mapped:{loop.mapped_to}")
    if loop.unroll > 1:
        tags.append(f"unroll:{loop.unroll}")
    if tags:
        header += "  /* " + ", ".join(tags) + " */"
    return header


def _print_node(node: Node, depth: int, lines: List[str]) -> None:
    pad = _INDENT * depth
    if isinstance(node, Assign):
        lines.append(pad + print_stmt(node))
    elif isinstance(node, Loop):
        lines.append(f"{node.label}: ".rjust(0) + pad + _loop_header(node) + " {")
        for child in node.body:
            _print_node(child, depth + 1, lines)
        lines.append(pad + "}")
    elif isinstance(node, Guard):
        note = f"  /* {node.note} */" if node.note else ""
        lines.append(pad + f"if ({node.cond!r}) {{{note}")
        for child in node.body:
            _print_node(child, depth + 1, lines)
        if node.else_body:
            lines.append(pad + "} else {")
            for child in node.else_body:
                _print_node(child, depth + 1, lines)
        lines.append(pad + "}")
    elif isinstance(node, Barrier):
        lines.append(pad + "__syncthreads();")
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot print node {node!r}")


def print_body(body: Sequence[Node]) -> str:
    lines: List[str] = []
    for node in body:
        _print_node(node, 0, lines)
    return "\n".join(lines)


def print_stage(stage: Stage) -> str:
    header = f"// stage {stage.name} ({stage.role})"
    return header + "\n" + print_body(stage.body)


def print_computation(comp: Computation) -> str:
    lines = [f"// computation {comp.name}"]
    for array in comp.arrays.values():
        dims = " x ".join(str(d) for d in array.dims)
        attrs = [array.storage, array.layout]
        if array.pad:
            attrs.append(f"pad+{array.pad}")
        if array.symmetric:
            attrs.append(f"symmetric-{array.symmetric}")
        if array.triangular:
            attrs.append(f"triangular-{array.triangular}")
        lines.append(f"// {array.name}: {dims} ({', '.join(attrs)})")
    for stage in comp.stages:
        lines.append(print_stage(stage))
    return "\n".join(lines)
