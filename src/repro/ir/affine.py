"""Affine expressions over loop variables and symbolic problem dimensions.

The polyhedral pool of the EPOD translator operates on loop nests whose
bounds and subscripts are affine in the enclosing loop variables and the
symbolic problem sizes (M, N, K).  This module provides the small affine
algebra those transformations are written against:

* :class:`AffineExpr` — ``c0 + sum(ci * vi)`` with integer coefficients.
* :class:`MinExpr` / :class:`MaxExpr` — the only non-affine bound forms the
  BLAS3 nests need (they arise from tiling triangular iteration spaces).

Variables are plain strings.  By convention lower-case names (``i``, ``k``,
``ii``) are loop variables and upper-case names (``M``, ``N``, ``K``) are
problem-size symbols, but nothing in this module depends on that.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Union

__all__ = [
    "AffineExpr",
    "MinExpr",
    "MaxExpr",
    "Bound",
    "aff",
    "const",
    "var",
    "bound_min",
    "bound_max",
]


class AffineExpr:
    """An affine expression ``const + Σ coeff[v] * v``.

    Immutable.  Zero coefficients are never stored, so two equal expressions
    always have identical internal dictionaries, which makes ``__eq__`` and
    ``__hash__`` structural.
    """

    __slots__ = ("terms", "offset")

    def __init__(self, terms: Mapping[str, int] | None = None, offset: int = 0):
        clean: Dict[str, int] = {}
        if terms:
            for name, coeff in terms.items():
                if not isinstance(coeff, int):
                    raise TypeError(f"coefficient for {name!r} must be int, got {coeff!r}")
                if coeff != 0:
                    clean[name] = coeff
        if not isinstance(offset, int):
            raise TypeError(f"offset must be int, got {offset!r}")
        object.__setattr__(self, "terms", clean)
        object.__setattr__(self, "offset", offset)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("AffineExpr is immutable")

    def __reduce__(self):
        # Default slot-state pickling restores via setattr, which the
        # immutability guard rejects; rebuild through __init__ instead.
        # Without this, a translated Computation could not cross the
        # search pool's process boundary.
        return (AffineExpr, (dict(self.terms), self.offset))

    # -- constructors -----------------------------------------------------
    @staticmethod
    def constant(value: int) -> "AffineExpr":
        return AffineExpr({}, value)

    @staticmethod
    def variable(name: str) -> "AffineExpr":
        return AffineExpr({name: 1}, 0)

    @staticmethod
    def coerce(value: "AffineLike") -> "AffineExpr":
        if isinstance(value, AffineExpr):
            return value
        if isinstance(value, bool):
            raise TypeError("bool is not a valid affine operand")
        if isinstance(value, int):
            return AffineExpr.constant(value)
        if isinstance(value, str):
            return AffineExpr.variable(value)
        raise TypeError(f"cannot coerce {value!r} to AffineExpr")

    # -- queries -----------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.terms

    @property
    def constant_value(self) -> int:
        if not self.is_constant:
            raise ValueError(f"{self} is not constant")
        return self.offset

    def free_vars(self) -> frozenset:
        return frozenset(self.terms)

    def coeff(self, name: str) -> int:
        return self.terms.get(name, 0)

    def depends_on(self, name: str) -> bool:
        return name in self.terms

    def is_single_var(self) -> bool:
        """True for expressions of the exact form ``v`` (coefficient 1, offset 0)."""
        return self.offset == 0 and len(self.terms) == 1 and next(iter(self.terms.values())) == 1

    def single_var(self) -> str:
        if not self.is_single_var():
            raise ValueError(f"{self} is not a bare variable")
        return next(iter(self.terms))

    # -- algebra -----------------------------------------------------------
    def __add__(self, other: "AffineLike") -> "AffineExpr":
        other = AffineExpr.coerce(other)
        terms = dict(self.terms)
        for name, coeff in other.terms.items():
            terms[name] = terms.get(name, 0) + coeff
        return AffineExpr(terms, self.offset + other.offset)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr({n: -c for n, c in self.terms.items()}, -self.offset)

    def __sub__(self, other: "AffineLike") -> "AffineExpr":
        return self + (-AffineExpr.coerce(other))

    def __rsub__(self, other: "AffineLike") -> "AffineExpr":
        return AffineExpr.coerce(other) + (-self)

    def __mul__(self, scalar: int) -> "AffineExpr":
        if not isinstance(scalar, int):
            raise TypeError("AffineExpr may only be scaled by an int")
        return AffineExpr({n: c * scalar for n, c in self.terms.items()}, self.offset * scalar)

    __rmul__ = __mul__

    def substitute(self, mapping: Mapping[str, "AffineLike"]) -> "AffineExpr":
        """Replace each variable in ``mapping`` by its (affine) value."""
        result = AffineExpr.constant(self.offset)
        for name, coeff in self.terms.items():
            if name in mapping:
                result = result + AffineExpr.coerce(mapping[name]) * coeff
            else:
                result = result + AffineExpr({name: coeff})
        return result

    def rename(self, mapping: Mapping[str, str]) -> "AffineExpr":
        return self.substitute({old: AffineExpr.variable(new) for old, new in mapping.items()})

    def evaluate(self, env: Mapping[str, int]) -> int:
        total = self.offset
        for name, coeff in self.terms.items():
            try:
                total += coeff * env[name]
            except KeyError:
                raise KeyError(f"unbound variable {name!r} while evaluating {self}") from None
        return total

    # -- protocol ----------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AffineExpr)
            and self.terms == other.terms
            and self.offset == other.offset
        )

    def __hash__(self) -> int:
        return hash((frozenset(self.terms.items()), self.offset))

    def __repr__(self) -> str:
        return f"AffineExpr({self})"

    def __str__(self) -> str:
        parts = []
        for name in sorted(self.terms):
            coeff = self.terms[name]
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coeff}*{name}")
        if self.offset or not parts:
            parts.append(str(self.offset))
        out = parts[0]
        for part in parts[1:]:
            out += f" - {part[1:]}" if part.startswith("-") else f" + {part}"
        return out


AffineLike = Union[AffineExpr, int, str]


class _MinMaxExpr:
    """Common machinery for :class:`MinExpr` and :class:`MaxExpr`."""

    __slots__ = ("operands",)
    _pick = None  # min or max builtin, set by subclass
    _name = ""

    def __init__(self, operands: Iterable[AffineLike]):
        ops = tuple(AffineExpr.coerce(o) for o in operands)
        if len(ops) < 2:
            raise ValueError(f"{self._name} needs at least two operands")
        object.__setattr__(self, "operands", ops)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __reduce__(self):
        # See AffineExpr.__reduce__: the guard breaks slot-state pickling.
        return (type(self), (self.operands,))

    @property
    def is_constant(self) -> bool:
        return all(o.is_constant for o in self.operands)

    @property
    def constant_value(self) -> int:
        return type(self)._pick(o.constant_value for o in self.operands)

    def free_vars(self) -> frozenset:
        out: frozenset = frozenset()
        for o in self.operands:
            out |= o.free_vars()
        return out

    def depends_on(self, name: str) -> bool:
        return any(o.depends_on(name) for o in self.operands)

    def substitute(self, mapping: Mapping[str, AffineLike]):
        return simplify_bound(type(self)(o.substitute(mapping) for o in self.operands))

    def rename(self, mapping: Mapping[str, str]):
        return simplify_bound(type(self)(o.rename(mapping) for o in self.operands))

    def evaluate(self, env: Mapping[str, int]) -> int:
        return type(self)._pick(o.evaluate(env) for o in self.operands)

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and set(self.operands) == set(other.operands)

    def __hash__(self) -> int:
        return hash((type(self).__name__, frozenset(self.operands)))

    def __repr__(self) -> str:
        return str(self)

    def __str__(self) -> str:
        return f"{self._name}({', '.join(str(o) for o in self.operands)})"


class MinExpr(_MinMaxExpr):
    """``min(e1, e2, ...)`` — arises as the upper bound of tiled loops."""

    __slots__ = ()
    _pick = staticmethod(min)
    _name = "min"


class MaxExpr(_MinMaxExpr):
    """``max(e1, e2, ...)`` — arises as the lower bound of tiled loops."""

    __slots__ = ()
    _pick = staticmethod(max)
    _name = "max"


Bound = Union[AffineExpr, MinExpr, MaxExpr]


def simplify_bound(bound: Bound) -> Bound:
    """Collapse constant-redundant min/max operands where provable.

    Only two safe simplifications are applied: deduplication of equal
    operands, and a single-operand result degrading to that operand.
    """
    if isinstance(bound, AffineExpr):
        return bound
    seen = []
    for op in bound.operands:
        if op not in seen:
            seen.append(op)
    if len(seen) == 1:
        return seen[0]
    return type(bound)(seen)


# -- convenience constructors ---------------------------------------------

def aff(value: AffineLike) -> AffineExpr:
    """Coerce an int/str/AffineExpr into an :class:`AffineExpr`."""
    return AffineExpr.coerce(value)


def const(value: int) -> AffineExpr:
    return AffineExpr.constant(value)


def var(name: str) -> AffineExpr:
    return AffineExpr.variable(name)


def bound_min(*operands: AffineLike) -> Bound:
    return simplify_bound(MinExpr(operands)) if len(operands) > 1 else aff(operands[0])


def bound_max(*operands: AffineLike) -> Bound:
    return simplify_bound(MaxExpr(operands)) if len(operands) > 1 else aff(operands[0])
