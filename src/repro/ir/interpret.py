"""Sequential reference interpreter for the loop-nest IR.

This executes a :class:`~repro.ir.ast.Computation` on NumPy arrays exactly
as written — mapped loops run as ordinary sequential loops, barriers are
no-ops — providing the functional oracle used by:

* transformation tests ("tiling/fission/fusion preserve semantics"),
* the composer's filter (a composed script is legal only if the transformed
  nest still computes the original answer), and
* validation of the GPU simulator's own per-thread execution.

The GPU simulator in :mod:`repro.gpu.simulator` executes the same IR with
grid/block semantics; both must agree.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from .ast import (
    THREAD_DIMS,
    ArrayRef,
    Assign,
    Barrier,
    BinOp,
    Cmp,
    And,
    Computation,
    Const,
    Expr,
    Flag,
    Guard,
    Loop,
    Neg,
    Node,
    Predicate,
    Recip,
    ScalarRef,
)

__all__ = ["interpret", "allocate_arrays", "evaluate_expr", "run_stages"]


_DTYPES = {"float32": np.float32, "float64": np.float64}


def allocate_arrays(
    comp: Computation,
    sizes: Mapping[str, int],
    inputs: Optional[Mapping[str, np.ndarray]] = None,
) -> Dict[str, np.ndarray]:
    """Allocate every declared array; copy in provided inputs.

    Derived arrays (shared tiles, register tiles, GM_map targets) are
    zero-initialised.  Input arrays are copied so callers keep their data.
    """
    buffers: Dict[str, np.ndarray] = {}
    inputs = inputs or {}
    for name, array in comp.arrays.items():
        shape = tuple(d.evaluate(sizes) for d in array.dims)
        dtype = _DTYPES[array.dtype]
        if name in inputs:
            given = np.asarray(inputs[name], dtype=dtype)
            if given.shape != shape:
                raise ValueError(
                    f"input {name!r} has shape {given.shape}, expected {shape}"
                )
            buffers[name] = given.copy()
        else:
            buffers[name] = np.zeros(shape, dtype=dtype)
    return buffers


def evaluate_expr(
    expr: Expr,
    env: Mapping[str, int],
    buffers: Mapping[str, np.ndarray],
    scalars: Mapping[str, float],
):
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, ScalarRef):
        try:
            return scalars[expr.name]
        except KeyError:
            raise KeyError(f"unbound scalar {expr.name!r}") from None
    if isinstance(expr, ArrayRef):
        idx = tuple(i.evaluate(env) for i in expr.indices)
        return buffers[expr.array][idx]
    if isinstance(expr, BinOp):
        left = evaluate_expr(expr.left, env, buffers, scalars)
        right = evaluate_expr(expr.right, env, buffers, scalars)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right
        raise ValueError(f"unknown binary operator {expr.op!r}")
    if isinstance(expr, Neg):
        return -evaluate_expr(expr.operand, env, buffers, scalars)
    if isinstance(expr, Recip):
        return 1.0 / evaluate_expr(expr.operand, env, buffers, scalars)
    raise TypeError(f"cannot evaluate {expr!r}")


def _eval_predicate(
    pred: Predicate, env: Mapping[str, int], flags: Mapping[str, bool]
) -> bool:
    if isinstance(pred, Cmp):
        return pred.evaluate(env)
    if isinstance(pred, And):
        return all(_eval_predicate(p, env, flags) for p in pred.operands)
    if isinstance(pred, Flag):
        return bool(flags.get(pred.name, False))
    raise TypeError(f"cannot evaluate predicate {pred!r}")


def _execute(
    body: Sequence[Node],
    env: Dict[str, int],
    buffers: Dict[str, np.ndarray],
    scalars: Mapping[str, float],
    flags: Mapping[str, bool],
    thread_order: str = "asc",
) -> None:
    for node in body:
        if isinstance(node, Assign):
            idx = tuple(i.evaluate(env) for i in node.target.indices)
            value = evaluate_expr(node.expr, env, buffers, scalars)
            buf = buffers[node.target.array]
            if node.op == "=":
                buf[idx] = value
            elif node.op == "+=":
                buf[idx] += value
            elif node.op == "-=":
                buf[idx] -= value
            else:
                raise ValueError(f"unknown assignment operator {node.op!r}")
        elif isinstance(node, Loop):
            lo = node.lower.evaluate(env)
            hi = node.upper.evaluate(env)
            values = range(lo, hi, node.step)
            if thread_order == "desc" and node.mapped_to in THREAD_DIMS:
                values = reversed(values)
            for value in values:
                env[node.var] = value
                _execute(node.body, env, buffers, scalars, flags, thread_order)
            env.pop(node.var, None)
        elif isinstance(node, Guard):
            if _eval_predicate(node.cond, env, flags):
                _execute(node.body, env, buffers, scalars, flags, thread_order)
            else:
                _execute(node.else_body, env, buffers, scalars, flags, thread_order)
        elif isinstance(node, Barrier):
            continue
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot execute node {node!r}")


def run_stages(
    comp: Computation,
    buffers: Dict[str, np.ndarray],
    sizes: Mapping[str, int],
    scalars: Mapping[str, float],
    flags: Mapping[str, bool],
    thread_order: str = "asc",
) -> None:
    """Execute every stage of ``comp`` against pre-allocated ``buffers``.

    This is the interpreter's stage-runner with allocation and defaulting
    factored out, so callers that manage buffers themselves (notably the
    JIT registry's fallback path in :mod:`repro.jit`) share one execution
    loop with :func:`interpret`.
    """
    env: Dict[str, int] = dict(sizes)
    for stage in comp.stages:
        _execute(stage.body, env, buffers, scalars, flags, thread_order)


def interpret(
    comp: Computation,
    sizes: Mapping[str, int],
    inputs: Mapping[str, np.ndarray],
    scalars: Optional[Mapping[str, float]] = None,
    flags: Optional[Mapping[str, bool]] = None,
    thread_order: str = "asc",
) -> Dict[str, np.ndarray]:
    """Run all stages of ``comp`` sequentially; return the buffer dict.

    ``thread_order="desc"`` enumerates thread-mapped loops in reverse — a
    cheap data-race probe: a kernel whose result depends on intra-phase
    thread ordering is not valid GPU code (the composer's filter compares
    both orders).
    """
    scalars = dict(scalars or {})
    for name in comp.scalars:
        scalars.setdefault(name, 1.0)
    merged_flags = dict(comp.flags)
    if flags:
        merged_flags.update(flags)
    buffers = allocate_arrays(comp, sizes, inputs)
    run_stages(comp, buffers, sizes, scalars, merged_flags, thread_order)
    return buffers
