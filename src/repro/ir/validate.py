"""Structural validation of computations.

Run after every transformation during development and by the composer's
filter before a candidate script is accepted: catches malformed IR early
(unbound variables, references to undeclared arrays, duplicate labels,
shape-rank mismatches, mapped-loop nesting violations).
"""

from __future__ import annotations

from typing import List, Sequence, Set

from .ast import (
    Assign,
    Barrier,
    Computation,
    GRID_DIMS,
    Guard,
    Loop,
    Node,
    THREAD_DIMS,
)

__all__ = ["ValidationError", "validate"]


class ValidationError(ValueError):
    """Raised when a computation violates a structural invariant."""


def validate(comp: Computation) -> None:
    """Raise :class:`ValidationError` on the first violated invariant."""
    seen_labels: Set[str] = set()
    for stage in comp.stages:
        _check_body(
            comp,
            stage.body,
            bound=set(comp.dim_symbols),
            seen_labels=seen_labels,
            mapped_seen=[],
            stage_name=stage.name,
        )


def _check_body(
    comp: Computation,
    body: Sequence[Node],
    bound: Set[str],
    seen_labels: Set[str],
    mapped_seen: List[str],
    stage_name: str,
) -> None:
    for node in body:
        if isinstance(node, Loop):
            _check_loop(comp, node, bound, seen_labels, mapped_seen, stage_name)
        elif isinstance(node, Assign):
            _check_stmt(comp, node, bound, stage_name)
        elif isinstance(node, Guard):
            _check_body(comp, node.body, bound, seen_labels, list(mapped_seen), stage_name)
            _check_body(comp, node.else_body, bound, seen_labels, list(mapped_seen), stage_name)
        elif isinstance(node, Barrier):
            continue
        else:
            raise ValidationError(f"[{stage_name}] unknown node type {type(node).__name__}")


def _check_loop(
    comp: Computation,
    loop: Loop,
    bound: Set[str],
    seen_labels: Set[str],
    mapped_seen: List[str],
    stage_name: str,
) -> None:
    if loop.label in seen_labels:
        raise ValidationError(f"[{stage_name}] duplicate loop label {loop.label!r}")
    seen_labels.add(loop.label)
    for bnd, which in ((loop.lower, "lower"), (loop.upper, "upper")):
        unbound = bnd.free_vars() - bound
        if unbound:
            raise ValidationError(
                f"[{stage_name}] loop {loop.label}: {which} bound {bnd} uses "
                f"unbound variable(s) {sorted(unbound)}"
            )
    if loop.var in bound:
        raise ValidationError(
            f"[{stage_name}] loop {loop.label} shadows variable {loop.var!r}"
        )
    if loop.mapped_to:
        if loop.mapped_to in mapped_seen:
            raise ValidationError(
                f"[{stage_name}] dimension {loop.mapped_to} mapped twice"
            )
        if loop.mapped_to in THREAD_DIMS:
            pass  # thread loops may appear under grid loops only
        mapped_seen = mapped_seen + [loop.mapped_to]
        if loop.mapped_to in GRID_DIMS and any(d in THREAD_DIMS for d in mapped_seen[:-1]):
            raise ValidationError(
                f"[{stage_name}] grid-mapped loop {loop.label} nested inside a "
                "thread-mapped loop"
            )
    _check_body(
        comp, loop.body, bound | {loop.var}, seen_labels, list(mapped_seen), stage_name
    )


def _check_stmt(
    comp: Computation, stmt: Assign, bound: Set[str], stage_name: str
) -> None:
    for ref_ in stmt.all_refs():
        if ref_.array not in comp.arrays:
            raise ValidationError(
                f"[{stage_name}] reference to undeclared array {ref_.array!r}"
            )
        array = comp.arrays[ref_.array]
        if len(ref_.indices) != array.rank:
            raise ValidationError(
                f"[{stage_name}] {ref_.array} is rank {array.rank} but "
                f"referenced with {len(ref_.indices)} subscripts"
            )
        for idx in ref_.indices:
            unbound = idx.free_vars() - bound
            if unbound:
                raise ValidationError(
                    f"[{stage_name}] subscript {idx} of {ref_.array} uses "
                    f"unbound variable(s) {sorted(unbound)}"
                )
