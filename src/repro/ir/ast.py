"""The polyhedral-lite loop-nest IR the EPOD translator transforms.

The IR mirrors what the paper's WRaP-IT/URUK layer exposes: labeled loop
nests with affine bounds (plus ``min``/``max`` forms produced by tiling),
statements whose array subscripts are affine, and enough annotation surface
for the traditional pool (storage classes, thread mappings, unroll factors,
guards for multi-versioned code).

Node kinds
----------
Expressions (statement right-hand sides):
    :class:`Const`, :class:`ScalarRef`, :class:`ArrayRef`, :class:`BinOp`,
    :class:`Neg`, :class:`Recip`.
Statements:
    :class:`Assign` (``=``, ``+=``, ``-=``).
Structure:
    :class:`Loop` (optionally mapped to a CUDA grid/thread dimension and/or
    annotated with an unroll factor), :class:`Guard` (predicated region for
    padding/binding/multi-versioning), :class:`Barrier` (``__syncthreads``).
Containers:
    :class:`Array` (symbolic shape + storage class + layout + padding),
    :class:`Stage` (one kernel-to-be), :class:`Computation` (a routine:
    declarations plus an ordered list of stages).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .affine import AffineExpr, AffineLike, Bound, MaxExpr, MinExpr, aff

__all__ = [
    "Expr",
    "Const",
    "ScalarRef",
    "ArrayRef",
    "BinOp",
    "Neg",
    "Recip",
    "Assign",
    "Loop",
    "Guard",
    "Barrier",
    "Cmp",
    "And",
    "Flag",
    "Array",
    "Stage",
    "Computation",
    "Node",
    "Predicate",
    "GRID_DIMS",
    "THREAD_DIMS",
    "fresh_label",
]

GRID_DIMS = ("block.x", "block.y", "block.z")
THREAD_DIMS = ("thread.x", "thread.y")

_label_counter = itertools.count()


def fresh_label(prefix: str = "L") -> str:
    """Generate a unique loop label (used when transforms synthesise loops)."""
    return f"{prefix}_{next(_label_counter)}"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for statement right-hand-side expressions."""

    __slots__ = ()

    def clone(self) -> "Expr":
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def array_refs(self) -> List["ArrayRef"]:
        out: List[ArrayRef] = []
        stack: List[Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, ArrayRef):
                out.append(node)
            stack.extend(node.children())
        return out

    def flop_count(self) -> int:
        """Number of floating-point operations in one evaluation."""
        count = 1 if isinstance(self, (BinOp, Neg, Recip)) else 0
        return count + sum(c.flop_count() for c in self.children())


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def clone(self) -> "Const":
        return Const(self.value)

    def __eq__(self, other):
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self):
        return hash(("Const", self.value))

    def __repr__(self):
        return f"Const({self.value})"


class ScalarRef(Expr):
    """Reference to a runtime scalar parameter (e.g. ``alpha``, ``beta``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def clone(self) -> "ScalarRef":
        return ScalarRef(self.name)

    def __eq__(self, other):
        return isinstance(other, ScalarRef) and self.name == other.name

    def __hash__(self):
        return hash(("ScalarRef", self.name))

    def __repr__(self):
        return f"ScalarRef({self.name!r})"


class ArrayRef(Expr):
    """``array[idx0][idx1]...`` with affine subscripts.

    ``region`` is developer-supplied metadata for symmetric-storage
    accesses — the paper's ``// for real area`` / ``// for shadow area``
    comments: ``GM_map(X, Symmetry)`` rewrites shadow references with
    swapped subscripts.  It does not participate in equality.
    """

    __slots__ = ("array", "indices", "region")

    def __init__(self, array: str, indices: Sequence[AffineLike], region: Optional[str] = None):
        self.array = array
        self.indices: Tuple[AffineExpr, ...] = tuple(aff(i) for i in indices)
        if region not in (None, "real", "shadow", "diag"):
            raise ValueError(f"unknown access region {region!r}")
        self.region = region

    def clone(self) -> "ArrayRef":
        return ArrayRef(self.array, self.indices, self.region)

    def substitute(self, mapping: Mapping[str, AffineLike]) -> "ArrayRef":
        return ArrayRef(
            self.array, tuple(i.substitute(mapping) for i in self.indices), self.region
        )

    def __eq__(self, other):
        return (
            isinstance(other, ArrayRef)
            and self.array == other.array
            and self.indices == other.indices
        )

    def __hash__(self):
        return hash(("ArrayRef", self.array, self.indices))

    def __repr__(self):
        idx = "".join(f"[{i}]" for i in self.indices)
        return f"{self.array}{idx}"


class BinOp(Expr):
    __slots__ = ("op", "left", "right")
    OPS = ("+", "-", "*", "/")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in self.OPS:
            raise ValueError(f"unsupported operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def clone(self) -> "BinOp":
        return BinOp(self.op, self.left.clone(), self.right.clone())

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __eq__(self, other):
        return (
            isinstance(other, BinOp)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash(("BinOp", self.op, self.left, self.right))

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class Neg(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def clone(self) -> "Neg":
        return Neg(self.operand.clone())

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __eq__(self, other):
        return isinstance(other, Neg) and self.operand == other.operand

    def __hash__(self):
        return hash(("Neg", self.operand))

    def __repr__(self):
        return f"(-{self.operand!r})"


class Recip(Expr):
    """``1 / operand`` — needed by TRSM's diagonal division."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def clone(self) -> "Recip":
        return Recip(self.operand.clone())

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __eq__(self, other):
        return isinstance(other, Recip) and self.operand == other.operand

    def __hash__(self):
        return hash(("Recip", self.operand))

    def __repr__(self):
        return f"(1/{self.operand!r})"


# ---------------------------------------------------------------------------
# Predicates (for Guard nodes)
# ---------------------------------------------------------------------------


class Predicate:
    __slots__ = ()

    def clone(self) -> "Predicate":
        raise NotImplementedError


class Cmp(Predicate):
    """``lhs OP rhs`` over affine expressions (loop/thread variables)."""

    __slots__ = ("lhs", "op", "rhs")
    OPS = ("==", "!=", "<", "<=", ">", ">=")

    def __init__(self, lhs: AffineLike, op: str, rhs: AffineLike):
        if op not in self.OPS:
            raise ValueError(f"unsupported comparison {op!r}")
        self.lhs = aff(lhs)
        self.op = op
        self.rhs = aff(rhs)

    def clone(self) -> "Cmp":
        return Cmp(self.lhs, self.op, self.rhs)

    def evaluate(self, env: Mapping[str, int]) -> bool:
        a, b = self.lhs.evaluate(env), self.rhs.evaluate(env)
        return {
            "==": a == b,
            "!=": a != b,
            "<": a < b,
            "<=": a <= b,
            ">": a > b,
            ">=": a >= b,
        }[self.op]

    def __repr__(self):
        return f"({self.lhs} {self.op} {self.rhs})"


class And(Predicate):
    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Predicate]):
        self.operands = tuple(operands)
        if not self.operands:
            raise ValueError("And needs at least one operand")

    def clone(self) -> "And":
        return And(o.clone() for o in self.operands)

    def __repr__(self):
        return " && ".join(repr(o) for o in self.operands)


class Flag(Predicate):
    """A runtime boolean flag (e.g. ``blank_zero`` for multi-versioned code)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def clone(self) -> "Flag":
        return Flag(self.name)

    def __repr__(self):
        return self.name


# ---------------------------------------------------------------------------
# Statements and structure
# ---------------------------------------------------------------------------


class Assign:
    """``target op= expr`` where ``op`` ∈ {``=``, ``+=``, ``-=``}."""

    __slots__ = ("target", "expr", "op", "label")
    OPS = ("=", "+=", "-=")

    def __init__(self, target: ArrayRef, expr: Expr, op: str = "=", label: Optional[str] = None):
        if op not in self.OPS:
            raise ValueError(f"unsupported assignment operator {op!r}")
        self.target = target
        self.expr = expr
        self.op = op
        self.label = label

    def clone(self) -> "Assign":
        return Assign(self.target.clone(), self.expr.clone(), self.op, self.label)

    def reads(self) -> List[ArrayRef]:
        refs = self.expr.array_refs()
        if self.op in ("+=", "-="):
            refs.append(self.target)
        return refs

    def writes(self) -> List[ArrayRef]:
        return [self.target]

    def all_refs(self) -> List[ArrayRef]:
        return self.expr.array_refs() + [self.target]

    def substitute(self, mapping: Mapping[str, AffineLike]) -> "Assign":
        return Assign(
            self.target.substitute(mapping),
            _substitute_expr(self.expr, mapping),
            self.op,
            self.label,
        )

    def flop_count(self) -> int:
        return self.expr.flop_count() + (1 if self.op in ("+=", "-=") else 0)

    def __repr__(self):
        return f"{self.target!r} {self.op} {self.expr!r}"


def _substitute_expr(expr: Expr, mapping: Mapping[str, AffineLike]) -> Expr:
    if isinstance(expr, ArrayRef):
        return expr.substitute(mapping)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _substitute_expr(expr.left, mapping),
            _substitute_expr(expr.right, mapping),
        )
    if isinstance(expr, Neg):
        return Neg(_substitute_expr(expr.operand, mapping))
    if isinstance(expr, Recip):
        return Recip(_substitute_expr(expr.operand, mapping))
    return expr.clone()


class Loop:
    """``for (var = lower; var < upper; var += step)`` with a label.

    ``mapped_to`` marks the loop as distributed over a CUDA grid/thread
    dimension by ``thread_grouping`` — the loop variable then *is* the
    (scaled) block/thread index.  ``unroll`` is a code-generation annotation
    set by ``loop_unroll``; it does not change semantics.
    ``sequential_marker`` is set by ``binding_triangular`` to record that the
    loop body must execute in a single thread.
    """

    __slots__ = ("var", "lower", "upper", "step", "body", "label", "mapped_to", "unroll")

    def __init__(
        self,
        var: str,
        lower: Union[Bound, int, str],
        upper: Union[Bound, int, str],
        body: Sequence["Node"],
        label: Optional[str] = None,
        step: int = 1,
        mapped_to: Optional[str] = None,
        unroll: int = 1,
    ):
        if step < 1:
            raise ValueError("step must be >= 1")
        self.var = var
        self.lower = lower if isinstance(lower, (MinExpr, MaxExpr)) else aff(lower)
        self.upper = upper if isinstance(upper, (MinExpr, MaxExpr)) else aff(upper)
        self.step = step
        self.body: List[Node] = list(body)
        self.label = label or fresh_label()
        if mapped_to is not None and mapped_to not in GRID_DIMS + THREAD_DIMS:
            raise ValueError(f"unknown mapping target {mapped_to!r}")
        self.mapped_to = mapped_to
        self.unroll = unroll

    def clone(self) -> "Loop":
        return Loop(
            self.var,
            self.lower,
            self.upper,
            [child.clone() for child in self.body],
            label=self.label,
            step=self.step,
            mapped_to=self.mapped_to,
            unroll=self.unroll,
        )

    def trip_count(self) -> Optional[int]:
        """Constant trip count if bounds are constant, else ``None``."""
        if self.lower.is_constant and self.upper.is_constant:
            span = self.upper.constant_value - self.lower.constant_value
            return max(0, -(-span // self.step))
        return None

    def is_rectangular(self, outer_vars: Iterable[str]) -> bool:
        """True when the bounds do not depend on any enclosing loop variable."""
        outer = set(outer_vars)
        return not (self.lower.free_vars() & outer) and not (self.upper.free_vars() & outer)

    def __repr__(self):
        head = f"Loop[{self.label}] {self.var} in [{self.lower}, {self.upper})"
        if self.step != 1:
            head += f" step {self.step}"
        if self.mapped_to:
            head += f" -> {self.mapped_to}"
        if self.unroll > 1:
            head += f" unroll {self.unroll}"
        return head


class Guard:
    """Predicated region; ``else_body`` supports multi-versioned code."""

    __slots__ = ("cond", "body", "else_body", "note")

    def __init__(
        self,
        cond: Predicate,
        body: Sequence["Node"],
        else_body: Sequence["Node"] = (),
        note: str = "",
    ):
        self.cond = cond
        self.body: List[Node] = list(body)
        self.else_body: List[Node] = list(else_body)
        self.note = note

    def clone(self) -> "Guard":
        return Guard(
            self.cond.clone(),
            [n.clone() for n in self.body],
            [n.clone() for n in self.else_body],
            self.note,
        )

    def __repr__(self):
        return f"Guard({self.cond!r})"


class Barrier:
    """A ``__syncthreads()`` point, inserted by SM_alloc's data movement."""

    __slots__ = ("note",)

    def __init__(self, note: str = ""):
        self.note = note

    def clone(self) -> "Barrier":
        return Barrier(self.note)

    def __repr__(self):
        return "Barrier()"


Node = Union[Loop, Assign, Guard, Barrier]


# ---------------------------------------------------------------------------
# Containers
# ---------------------------------------------------------------------------

STORAGE_CLASSES = ("global", "shared", "register")
LAYOUTS = ("col", "row")


@dataclass(frozen=True)
class Array:
    """Declaration of an array visible to a computation.

    ``dims`` are symbolic sizes (affine in the problem-size symbols).
    ``layout`` follows BLAS convention: ``col`` means the *first* subscript
    is the contiguous (stride-1) one.  ``pad`` extends the minor dimension of
    shared arrays to dodge bank conflicts.  ``zero_blank`` records the
    ``blank(X).zero`` property Adaptor_Triangular's padding rule requires.
    ``triangular``/``symmetric`` record structural facts used by detection
    steps ("lower"/"upper"/None). ``unit_diag`` marks unit-diagonal
    triangular matrices.
    """

    name: str
    dims: Tuple[AffineExpr, ...]
    storage: str = "global"
    layout: str = "col"
    pad: int = 0
    dtype: str = "float32"
    symmetric: Optional[str] = None
    triangular: Optional[str] = None
    unit_diag: bool = False
    zero_blank: bool = False
    source: Optional[str] = None  # for derived arrays: name of the origin

    def __post_init__(self):
        if self.storage not in STORAGE_CLASSES:
            raise ValueError(f"unknown storage class {self.storage!r}")
        if self.layout not in LAYOUTS:
            raise ValueError(f"unknown layout {self.layout!r}")
        object.__setattr__(self, "dims", tuple(aff(d) for d in self.dims))

    def with_(self, **kwargs) -> "Array":
        return replace(self, **kwargs)

    @property
    def rank(self) -> int:
        return len(self.dims)


@dataclass
class Stage:
    """One kernel-to-be: a loop nest plus stage-local shared/register arrays.

    ``GM_map`` prepends a data-remapping stage in front of the main compute
    stage; each stage becomes a separate CUDA kernel launch.
    """

    name: str
    body: List[Node]
    role: str = "compute"  # "compute" | "remap" | "check"
    # Structural metadata recorded by transforms (e.g. thread_grouping's
    # index decomposition) and consumed by later ones (binding_triangular).
    meta: Dict[str, object] = field(default_factory=dict)

    def clone(self) -> "Stage":
        return Stage(self.name, [n.clone() for n in self.body], self.role, dict(self.meta))

    def loops(self) -> List[Loop]:
        """All loops in the stage, preorder."""
        out: List[Loop] = []
        stack: List[Node] = list(reversed(self.body))
        while stack:
            node = stack.pop()
            if isinstance(node, Loop):
                out.append(node)
                stack.extend(reversed(node.body))
            elif isinstance(node, Guard):
                stack.extend(reversed(node.body + node.else_body))
        return out


@dataclass
class Computation:
    """A whole routine: symbol declarations plus an ordered list of stages."""

    name: str
    arrays: Dict[str, Array]
    stages: List[Stage]
    scalars: Tuple[str, ...] = ("alpha", "beta")
    dim_symbols: Tuple[str, ...] = ("M", "N", "K")
    flags: Dict[str, bool] = field(default_factory=dict)
    # Tunable optimization parameters (tile sizes, thread-block shape, ...),
    # filled in by thread_grouping/loop_tiling and swept by the auto-tuner.
    params: Dict[str, int] = field(default_factory=dict)

    def clone(self) -> "Computation":
        return Computation(
            self.name,
            dict(self.arrays),
            [s.clone() for s in self.stages],
            self.scalars,
            self.dim_symbols,
            dict(self.flags),
            dict(self.params),
        )

    @property
    def main_stage(self) -> Stage:
        for stage in self.stages:
            if stage.role == "compute":
                return stage
        raise ValueError(f"computation {self.name!r} has no compute stage")

    def add_array(self, array: Array) -> None:
        if array.name in self.arrays:
            raise ValueError(f"array {array.name!r} already declared")
        self.arrays[array.name] = array

    def array(self, name: str) -> Array:
        try:
            return self.arrays[name]
        except KeyError:
            raise KeyError(f"unknown array {name!r} in {self.name}") from None

    def find_loop(self, label: str) -> Loop:
        for stage in self.stages:
            for loop in stage.loops():
                if loop.label == label:
                    return loop
        raise KeyError(f"no loop labeled {label!r} in {self.name}")
