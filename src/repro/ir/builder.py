"""Builders and a labeled-source parser for the loop-nest IR.

The paper presents every routine as "labeled source code" (Fig. 3, Fig. 14):
C loop nests whose ``for`` headers carry labels such as ``Li:`` so EPOD
scripts can name them.  :func:`parse_labeled_source` accepts exactly that
notation, e.g.::

    Li: for (i = 0; i < M; i++)
    Lj:   for (j = 0; j < N; j++)
    Lk:     for (k = 0; k <= i; k++)
                C[i][j] += A[i][k] * B[k][j];

Braces are optional when a loop has a single child.  Conditions may use
``<`` or ``<=`` (the latter is normalised to an exclusive bound).  Subscripts
and bounds must be affine.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from .affine import AffineExpr, const, var
from .ast import (
    Array,
    ArrayRef,
    Assign,
    BinOp,
    Computation,
    Const,
    Expr,
    Loop,
    Neg,
    Node,
    Recip,
    ScalarRef,
    Stage,
)

__all__ = [
    "loop",
    "assign",
    "ref",
    "scalar",
    "num",
    "mul",
    "add",
    "sub",
    "parse_labeled_source",
    "parse_expr",
    "parse_affine",
    "build_computation",
    "ParseError",
]


# ---------------------------------------------------------------------------
# Programmatic builders
# ---------------------------------------------------------------------------


def loop(var_name: str, lower, upper, body: Sequence[Node], label: Optional[str] = None) -> Loop:
    return Loop(var_name, lower, upper, body, label=label)


def ref(array: str, *indices) -> ArrayRef:
    return ArrayRef(array, indices)


def scalar(name: str) -> ScalarRef:
    return ScalarRef(name)


def num(value: float) -> Const:
    return Const(value)


def mul(left: Expr, right: Expr) -> BinOp:
    return BinOp("*", left, right)


def add(left: Expr, right: Expr) -> BinOp:
    return BinOp("+", left, right)


def sub(left: Expr, right: Expr) -> BinOp:
    return BinOp("-", left, right)


def assign(target: ArrayRef, expr: Expr, op: str = "=", label: Optional[str] = None) -> Assign:
    return Assign(target, expr, op, label)


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------


class ParseError(ValueError):
    """Raised for malformed labeled source."""


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*)
  | (?P<num>\d+\.\d+|\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op>\+\+|\+=|-=|<=|>=|==|[-+*/%<>=;:,(){}\[\]])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        tokens.append(match.group())
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self, ahead: int = 0) -> Optional[str]:
        idx = self.pos + ahead
        return self.tokens[idx] if idx < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, expected: str) -> str:
        tok = self.next()
        if tok != expected:
            raise ParseError(f"expected {expected!r}, got {tok!r} (at token {self.pos - 1})")
        return tok

    def accept(self, expected: str) -> bool:
        if self.peek() == expected:
            self.pos += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.tokens)


# ---------------------------------------------------------------------------
# Affine sub-parser (bounds and subscripts)
# ---------------------------------------------------------------------------


def _parse_affine_stream(ts: _TokenStream) -> AffineExpr:
    expr = _parse_affine_term(ts)
    while ts.peek() in ("+", "-"):
        op = ts.next()
        term = _parse_affine_term(ts)
        expr = expr + term if op == "+" else expr - term
    return expr


def _parse_affine_term(ts: _TokenStream) -> AffineExpr:
    negate = False
    while ts.peek() in ("+", "-"):
        if ts.next() == "-":
            negate = not negate
    tok = ts.next()
    if tok == "(":
        inner = _parse_affine_stream(ts)
        ts.expect(")")
        term = inner
    elif tok.isdigit():
        value = int(tok)
        if ts.accept("*"):
            name = ts.next()
            if not re.fullmatch(r"[A-Za-z_]\w*", name):
                raise ParseError(f"expected variable after '*', got {name!r}")
            term = var(name) * value
        else:
            term = const(value)
    elif re.fullmatch(r"[A-Za-z_]\w*", tok):
        term = var(tok)
        if ts.accept("*"):
            coeff = ts.next()
            if not coeff.isdigit():
                raise ParseError(f"non-affine product {tok}*{coeff}")
            term = term * int(coeff)
    else:
        raise ParseError(f"cannot parse affine term starting with {tok!r}")
    return -term if negate else term


def parse_affine(text: str) -> AffineExpr:
    ts = _TokenStream(_tokenize(text))
    expr = _parse_affine_stream(ts)
    if not ts.exhausted:
        raise ParseError(f"trailing tokens after affine expression: {ts.tokens[ts.pos:]}")
    return expr


# ---------------------------------------------------------------------------
# Expression sub-parser (statement right-hand sides)
# ---------------------------------------------------------------------------


def _parse_primary(ts: _TokenStream, known_arrays: Optional[set]) -> Expr:
    tok = ts.next()
    if tok == "(":
        inner = _parse_addsub(ts, known_arrays)
        ts.expect(")")
        return inner
    if tok == "-":
        return Neg(_parse_primary(ts, known_arrays))
    if re.fullmatch(r"\d+\.\d+|\d+", tok):
        return Const(float(tok))
    if re.fullmatch(r"[A-Za-z_]\w*", tok):
        if ts.peek() == "[":
            indices = []
            while ts.accept("["):
                indices.append(_parse_affine_stream(ts))
                ts.expect("]")
            return ArrayRef(tok, indices)
        if known_arrays is not None and tok in known_arrays:
            raise ParseError(f"array {tok!r} used without subscripts")
        return ScalarRef(tok)
    raise ParseError(f"cannot parse expression starting with {tok!r}")


def _parse_muldiv(ts: _TokenStream, known_arrays: Optional[set]) -> Expr:
    expr = _parse_primary(ts, known_arrays)
    while ts.peek() in ("*", "/"):
        op = ts.next()
        rhs = _parse_primary(ts, known_arrays)
        if op == "/" and isinstance(expr, Const) and expr.value == 1.0:
            expr = Recip(rhs)
        else:
            expr = BinOp(op, expr, rhs)
    return expr


def _parse_addsub(ts: _TokenStream, known_arrays: Optional[set]) -> Expr:
    expr = _parse_muldiv(ts, known_arrays)
    while ts.peek() in ("+", "-"):
        op = ts.next()
        expr = BinOp(op, expr, _parse_muldiv(ts, known_arrays))
    return expr


def parse_expr(text: str, known_arrays: Optional[set] = None) -> Expr:
    ts = _TokenStream(_tokenize(text))
    expr = _parse_addsub(ts, known_arrays)
    if not ts.exhausted:
        raise ParseError(f"trailing tokens after expression: {ts.tokens[ts.pos:]}")
    return expr


# ---------------------------------------------------------------------------
# Labeled-source parser
# ---------------------------------------------------------------------------


def _parse_statement(ts: _TokenStream) -> Assign:
    name = ts.next()
    if not re.fullmatch(r"[A-Za-z_]\w*", name):
        raise ParseError(f"expected array name, got {name!r}")
    indices = []
    while ts.accept("["):
        indices.append(_parse_affine_stream(ts))
        ts.expect("]")
    if not indices:
        raise ParseError(f"statement target {name!r} must be an array reference")
    target = ArrayRef(name, indices)
    op = ts.next()
    if op not in ("=", "+=", "-="):
        raise ParseError(f"expected assignment operator, got {op!r}")
    expr = _parse_addsub(ts, None)
    ts.expect(";")
    return Assign(target, expr, op)


def _parse_for(ts: _TokenStream, label: Optional[str]) -> Loop:
    ts.expect("for")
    ts.expect("(")
    var_name = ts.next()
    ts.expect("=")
    lower = _parse_affine_stream(ts)
    ts.expect(";")
    cond_var = ts.next()
    if cond_var != var_name:
        raise ParseError(f"loop condition tests {cond_var!r}, expected {var_name!r}")
    cmp_op = ts.next()
    if cmp_op not in ("<", "<="):
        raise ParseError(f"unsupported loop condition operator {cmp_op!r}")
    upper = _parse_affine_stream(ts)
    if cmp_op == "<=":
        upper = upper + 1
    ts.expect(";")
    # increment: `i++` or `i += c`
    inc_var = ts.next()
    if inc_var != var_name:
        raise ParseError(f"loop increments {inc_var!r}, expected {var_name!r}")
    step = 1
    tok = ts.next()
    if tok == "+=":
        step_tok = ts.next()
        if not step_tok.isdigit():
            raise ParseError(f"non-constant loop step {step_tok!r}")
        step = int(step_tok)
    elif tok != "++":
        raise ParseError(f"unsupported loop increment {tok!r}")
    ts.expect(")")
    body = _parse_block_or_single(ts)
    return Loop(var_name, lower, upper, body, label=label, step=step)


def _parse_block_or_single(ts: _TokenStream) -> List[Node]:
    if ts.accept("{"):
        body: List[Node] = []
        while not ts.accept("}"):
            body.append(_parse_node(ts))
        return body
    return [_parse_node(ts)]


def _parse_node(ts: _TokenStream) -> Node:
    label: Optional[str] = None
    if (
        ts.peek() is not None
        and re.fullmatch(r"[A-Za-z_]\w*", ts.peek() or "")
        and ts.peek(1) == ":"
    ):
        label = ts.next()
        ts.expect(":")
    if ts.peek() == "for":
        return _parse_for(ts, label)
    stmt = _parse_statement(ts)
    stmt.label = label
    return stmt


def parse_labeled_source(text: str) -> List[Node]:
    """Parse labeled C-like source into a list of IR nodes."""
    ts = _TokenStream(_tokenize(text))
    nodes: List[Node] = []
    while not ts.exhausted:
        nodes.append(_parse_node(ts))
    return nodes


def build_computation(
    name: str,
    source: str,
    arrays: Sequence[Array],
    scalars: Tuple[str, ...] = ("alpha", "beta"),
    dim_symbols: Tuple[str, ...] = ("M", "N", "K"),
) -> Computation:
    """Parse labeled source and wrap it into a single-stage computation."""
    body = parse_labeled_source(source)
    comp = Computation(
        name,
        {a.name: a for a in arrays},
        [Stage(name=f"{name}_main", body=body, role="compute")],
        scalars=scalars,
        dim_symbols=dim_symbols,
    )
    return comp
