"""Symbol renaming over computations — the substrate of cross-routine
stitching.

:func:`repro.composer.fuse.stitch_chain` places several routines' loop
nests side by side in ONE computation, which is only well-formed if the
pieces stop sharing names first: each node's arrays are rewritten to the
chain's shared symbols (so a producer's ``C`` and its consumer's ``B``
become the *same* intermediate array), its dimension symbols get
chain-unique names (later unified where shapes must agree), and its loop
labels get a node prefix (so two ``Li`` nests can coexist and transforms
can still address each by label).

:func:`rename_computation` does all three in one structural walk and
never mutates its input.  It is deliberately limited to the *naive*
loop-nest form the composer starts from (loops, assignments, simple
guards) — renaming happens before any EPOD scheme runs, so transformed
constructs (thread mappings, shared-memory stages) never appear here.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from .affine import AffineExpr
from .ast import Array, Assign, Barrier, Cmp, Computation, Guard, Loop, Node, Stage

__all__ = ["rename_computation"]


def _rename_bound(bound, dims: Mapping[str, str]):
    return bound.rename(dims) if dims else bound


def _rename_node(
    node: Node,
    arrays: Mapping[str, str],
    dim_sub: Mapping[str, AffineExpr],
    dims: Mapping[str, str],
    prefix: str,
) -> Node:
    if isinstance(node, Loop):
        label = f"{prefix}{node.label}" if prefix else node.label
        return Loop(
            node.var,
            _rename_bound(node.lower, dims),
            _rename_bound(node.upper, dims),
            [_rename_node(child, arrays, dim_sub, dims, prefix) for child in node.body],
            label=label,
            step=node.step,
            mapped_to=node.mapped_to,
            unroll=node.unroll,
        )
    if isinstance(node, Assign):
        renamed = node.substitute(dim_sub)
        if prefix and renamed.label:
            renamed = Assign(
                renamed.target, renamed.expr, renamed.op, f"{prefix}{renamed.label}"
            )
        for ref in renamed.all_refs():
            ref.array = arrays.get(ref.array, ref.array)
        return renamed
    if isinstance(node, Guard):
        cond = node.cond
        if dims and isinstance(cond, Cmp):
            cond = Cmp(cond.lhs.rename(dims), cond.op, cond.rhs.rename(dims))
        return Guard(
            cond,
            [_rename_node(child, arrays, dim_sub, dims, prefix) for child in node.body],
            [
                _rename_node(child, arrays, dim_sub, dims, prefix)
                for child in node.else_body
            ],
            node.note,
        )
    if isinstance(node, Barrier):
        return Barrier(node.note)
    raise TypeError(f"rename_computation cannot handle {type(node).__name__}")


def rename_computation(
    comp: Computation,
    *,
    arrays: Optional[Mapping[str, str]] = None,
    dims: Optional[Mapping[str, str]] = None,
    label_prefix: str = "",
    name: Optional[str] = None,
) -> Computation:
    """A structural copy of ``comp`` with symbols renamed.

    ``arrays`` maps array names (declarations and every reference),
    ``dims`` maps dimension symbols (loop bounds, guard predicates,
    array extents, ``dim_symbols``), and ``label_prefix`` is prepended
    to every loop/statement label.  Mappings may be partial; unmapped
    symbols pass through.  The input computation is never modified.
    """
    array_map = dict(arrays or {})
    dim_map = dict(dims or {})
    dim_sub = {old: AffineExpr.variable(new) for old, new in dim_map.items()}

    new_arrays: Dict[str, Array] = {}
    for old_name, array in comp.arrays.items():
        new_name = array_map.get(old_name, old_name)
        if new_name in new_arrays:
            raise ValueError(
                f"array rename collapses {old_name!r} onto {new_name!r}, "
                "already declared"
            )
        new_dims = tuple(_rename_bound(d, dim_map) for d in array.dims)
        new_arrays[new_name] = array.with_(name=new_name, dims=new_dims)

    stages: List[Stage] = []
    for stage in comp.stages:
        stages.append(
            Stage(
                f"{label_prefix}{stage.name}" if label_prefix else stage.name,
                [
                    _rename_node(node, array_map, dim_sub, dim_map, label_prefix)
                    for node in stage.body
                ],
                stage.role,
                dict(stage.meta),
            )
        )

    return Computation(
        name if name is not None else comp.name,
        new_arrays,
        stages,
        scalars=comp.scalars,
        dim_symbols=tuple(dim_map.get(s, s) for s in comp.dim_symbols),
        flags=dict(comp.flags),
        params=dict(comp.params),
    )
