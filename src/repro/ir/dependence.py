"""PolyDeps-like data-dependence analysis.

The composer's filter (paper §IV-B.2) checks every composed transformation
sequence "to ensure that data dependences are satisfied with the PolyDeps
tool".  This module plays that role for our IR with two layers:

* a fast symbolic **GCD test** that can prove independence of a pair of
  affine references, and
* an **exhaustive small-domain checker** that executes the nest on small
  symbolic sizes and extracts the exact dependence set with direction
  vectors — the oracle the legality predicates are built on.  BLAS3 nests
  are tiny, so exhaustive extraction at sizes ~6–8 is exact for the
  dependence *patterns* (constant-distance and direction information does
  not change with the sizes involved here).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .affine import AffineExpr
from .ast import Assign, ArrayRef, Barrier, Guard, Loop, Node

__all__ = [
    "Dependence",
    "gcd_test",
    "banerjee_test",
    "may_alias",
    "analyze_dependences",
    "direction_vectors_for",
    "interchange_legal",
    "fusion_legal",
    "carries_dependence",
]

# Direction symbols: "<" (carried forward), "=" (loop-independent),
# ">" (would be carried backward — illegal unless removed).
DIRECTIONS = ("<", "=", ">")


@dataclass(frozen=True)
class Dependence:
    """A dependence edge between two statement instances, summarised.

    ``kind`` ∈ {"flow", "anti", "output"}.  ``direction`` holds one symbol
    per *common* enclosing loop (outermost first).  ``src``/``dst`` identify
    statements by their position index in textual order.
    """

    kind: str
    array: str
    src: int
    dst: int
    direction: Tuple[str, ...]

    def loop_carried(self) -> bool:
        return any(d != "=" for d in self.direction)


# ---------------------------------------------------------------------------
# GCD test
# ---------------------------------------------------------------------------


def gcd_test(ref_a: ArrayRef, ref_b: ArrayRef) -> bool:
    """Return True when the two references *may* touch the same element.

    Classic per-dimension GCD test on ``ref_a[idx] = ref_b[idx']`` treating
    each loop variable occurrence as an independent integer unknown.  A
    False result is a proof of independence; True is "cannot rule out".
    """
    if ref_a.array != ref_b.array:
        return False
    if len(ref_a.indices) != len(ref_b.indices):
        return True  # malformed; be conservative
    for ia, ib in zip(ref_a.indices, ref_b.indices):
        # Solve sum(ca_k * xa_k) - sum(cb_k * xb_k) = cb0 - ca0 over integers.
        coeffs = [*(ia.terms.values()), *(-c for c in ib.terms.values())]
        rhs = ib.offset - ia.offset
        if not coeffs:
            if rhs != 0:
                return False
            continue
        g = 0
        for c in coeffs:
            g = math.gcd(g, abs(c))
        if g == 0:
            if rhs != 0:
                return False
            continue
        if rhs % g != 0:
            return False
    return True


def banerjee_test(
    ref_a: ArrayRef,
    ref_b: ArrayRef,
    bounds: Mapping[str, Tuple[int, int]],
) -> bool:
    """Banerjee bounds test: may the two references touch the same element
    when each variable ``v`` ranges over the **inclusive** interval
    ``bounds[v]``?

    For each dimension, the equation ``a(x) − b(y) = 0`` (treating the two
    references' variable instances as independent) is checked against the
    interval of the left-hand side: if 0 lies outside
    ``[min(a−b), max(a−b)]`` the dimension — hence the pair — is
    independent.  Like :func:`gcd_test`, False is a proof of independence
    and True is "cannot rule out"; variables without bounds are treated as
    fully unconstrained (a wide symmetric default).
    """
    if ref_a.array != ref_b.array:
        return False
    if len(ref_a.indices) != len(ref_b.indices):
        return True
    for ia, ib in zip(ref_a.indices, ref_b.indices):
        lo = ia.offset - ib.offset
        hi = lo
        unbounded = (-(1 << 20), 1 << 20)  # conservative default
        for name, coeff in ia.terms.items():
            vlo, vhi = bounds.get(name, unbounded)
            lo += min(coeff * vlo, coeff * vhi)
            hi += max(coeff * vlo, coeff * vhi)
        for name, coeff in ib.terms.items():
            vlo, vhi = bounds.get(name, unbounded)
            lo += min(-coeff * vlo, -coeff * vhi)
            hi += max(-coeff * vlo, -coeff * vhi)
        if not (lo <= 0 <= hi):
            return False
    return True


def may_alias(
    ref_a: ArrayRef,
    ref_b: ArrayRef,
    bounds: Optional[Mapping[str, Tuple[int, int]]] = None,
) -> bool:
    """Combined GCD + Banerjee independence proof (the PolyDeps front line)."""
    if not gcd_test(ref_a, ref_b):
        return False
    if bounds is not None and not banerjee_test(ref_a, ref_b, bounds):
        return False
    return True


# ---------------------------------------------------------------------------
# Exhaustive small-domain dependence extraction
# ---------------------------------------------------------------------------


@dataclass
class _Access:
    time: int
    stmt_index: int
    itervec: Tuple[Tuple[str, int], ...]  # (loop var, value) outermost first
    is_write: bool


def _collect_statements(body: Sequence[Node]) -> List[Assign]:
    out: List[Assign] = []

    def rec(nodes: Sequence[Node]) -> None:
        for node in nodes:
            if isinstance(node, Assign):
                out.append(node)
            elif isinstance(node, Loop):
                rec(node.body)
            elif isinstance(node, Guard):
                rec(node.body)
                rec(node.else_body)

    rec(body)
    return out


def _trace(
    body: Sequence[Node],
    env: Dict[str, int],
    loops: Tuple[Tuple[str, int], ...],
    stmt_ids: Dict[int, int],
    accesses: Dict[Tuple[str, Tuple[int, ...]], List[_Access]],
    clock: List[int],
) -> None:
    for node in body:
        if isinstance(node, Assign):
            stmt_index = stmt_ids[id(node)]
            time = clock[0]
            clock[0] += 1
            for is_write, refs in ((False, node.reads()), (True, node.writes())):
                for ref_ in refs:
                    cell = (ref_.array, tuple(i.evaluate(env) for i in ref_.indices))
                    accesses.setdefault(cell, []).append(
                        _Access(time, stmt_index, loops, is_write)
                    )
        elif isinstance(node, Loop):
            lo = node.lower.evaluate(env)
            hi = node.upper.evaluate(env)
            for value in range(lo, hi, node.step):
                env[node.var] = value
                _trace(
                    node.body,
                    env,
                    loops + ((node.var, value),),
                    stmt_ids,
                    accesses,
                    clock,
                )
            env.pop(node.var, None)
        elif isinstance(node, Guard):
            # Guards are control flow the dependence test must be
            # conservative about: trace both branches.
            _trace(node.body, env, loops, stmt_ids, accesses, clock)
            _trace(node.else_body, env, loops, stmt_ids, accesses, clock)
        elif isinstance(node, Barrier):
            continue
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot trace node {node!r}")


def _direction(src: _Access, dst: _Access) -> Tuple[str, ...]:
    common: List[str] = []
    src_map = dict(src.itervec)
    for var_name, dst_val in dst.itervec:
        if var_name in src_map:
            src_val = src_map[var_name]
            common.append("<" if src_val < dst_val else ("=" if src_val == dst_val else ">"))
    return tuple(common)


def analyze_dependences(
    body: Sequence[Node],
    sizes: Optional[Mapping[str, int]] = None,
    default_size: int = 6,
) -> List[Dependence]:
    """Extract the dependence set of ``body`` on a small concrete domain."""
    stmts = _collect_statements(body)
    stmt_ids = {id(s): idx for idx, s in enumerate(stmts)}
    free: Set[str] = set()
    for node in body:
        free |= _free_symbols(node)
    bound_vars = _loop_vars(body)
    env: Dict[str, int] = {}
    for name in free - bound_vars:
        env[name] = (sizes or {}).get(name, default_size)
    if sizes:
        for name, value in sizes.items():
            env.setdefault(name, value)

    accesses: Dict[Tuple[str, Tuple[int, ...]], List[_Access]] = {}
    clock = [0]
    _trace(body, env, (), stmt_ids, accesses, clock)

    deps: Set[Dependence] = set()
    for (array, _cell), access_list in accesses.items():
        access_list.sort(key=lambda a: a.time)
        for i, first in enumerate(access_list):
            for second in access_list[i + 1 :]:
                if not (first.is_write or second.is_write):
                    continue
                if first.is_write and second.is_write:
                    kind = "output"
                elif first.is_write:
                    kind = "flow"
                else:
                    kind = "anti"
                deps.add(
                    Dependence(
                        kind,
                        array,
                        first.stmt_index,
                        second.stmt_index,
                        _direction(first, second),
                    )
                )
    return sorted(deps, key=lambda d: (d.array, d.kind, d.src, d.dst, d.direction))


def _free_symbols(node: Node) -> Set[str]:
    free: Set[str] = set()
    if isinstance(node, Assign):
        for r in node.all_refs():
            for idx in r.indices:
                free |= set(idx.free_vars())
    elif isinstance(node, Loop):
        free |= set(node.lower.free_vars()) | set(node.upper.free_vars())
        for child in node.body:
            free |= _free_symbols(child)
    elif isinstance(node, Guard):
        for child in node.body + node.else_body:
            free |= _free_symbols(child)
    return free


def _loop_vars(body: Sequence[Node]) -> Set[str]:
    out: Set[str] = set()

    def rec(nodes: Sequence[Node]) -> None:
        for node in nodes:
            if isinstance(node, Loop):
                out.add(node.var)
                rec(node.body)
            elif isinstance(node, Guard):
                rec(node.body)
                rec(node.else_body)

    rec(body)
    return out


# ---------------------------------------------------------------------------
# Legality predicates
# ---------------------------------------------------------------------------


def direction_vectors_for(
    deps: Sequence[Dependence], depth_a: int, depth_b: int
) -> List[Tuple[str, str]]:
    """Project each dependence's direction vector onto two loop depths."""
    out = []
    for dep in deps:
        if len(dep.direction) > max(depth_a, depth_b):
            out.append((dep.direction[depth_a], dep.direction[depth_b]))
    return out


def interchange_legal(
    body: Sequence[Node],
    depth_a: int,
    depth_b: int,
    sizes: Optional[Mapping[str, int]] = None,
) -> bool:
    """Loops at ``depth_a`` < ``depth_b`` may be interchanged iff no
    dependence has direction ``(<, >)`` on those two depths."""
    deps = analyze_dependences(body, sizes)
    for da, db in direction_vectors_for(deps, depth_a, depth_b):
        if da == "<" and db == ">":
            return False
    return True


def carries_dependence(
    body: Sequence[Node], depth: int, sizes: Optional[Mapping[str, int]] = None
) -> bool:
    """Whether the loop at ``depth`` carries any dependence (blocks
    parallelisation of that loop)."""
    deps = analyze_dependences(body, sizes)
    for dep in deps:
        if len(dep.direction) > depth and dep.direction[depth] != "=":
            return True
    return False


def fusion_legal(
    loop_a: Loop,
    loop_b: Loop,
    sizes: Optional[Mapping[str, int]] = None,
) -> bool:
    """Two adjacent loops may be fused iff fusing them does not reverse any
    dependence: in the fused body, no dependence from (original) second-loop
    instances back to first-loop instances may become carried backward.

    Checked empirically: trace the sequential pair, trace the fused form,
    and require the fused execution to preserve every flow dependence's
    source-before-destination ordering.
    """
    if loop_a.step != loop_b.step:
        return False
    # Rename loop_b's variable to loop_a's so domains align.
    if loop_a.lower != loop_b.lower or loop_a.upper != loop_b.upper:
        renamed_lower = _rename_bound(loop_b.lower, {loop_b.var: loop_a.var})
        renamed_upper = _rename_bound(loop_b.upper, {loop_b.var: loop_a.var})
        if renamed_lower != loop_a.lower or renamed_upper != loop_a.upper:
            return False

    fused_body = [child.clone() for child in loop_a.body]
    rename = {loop_b.var: loop_a.var}
    for child in loop_b.body:
        fused_body.append(_rename_node(child.clone(), rename))
    fused = Loop(loop_a.var, loop_a.lower, loop_a.upper, fused_body, step=loop_a.step)

    fused_deps = analyze_dependences([fused], sizes)
    # Count statements in loop_a to split indices.
    n_a = len(_collect_statements(loop_a.body))

    # Sequential execution runs EVERY first-loop access before any
    # second-loop access, so in the fused nest a dependence is reversed
    # exactly when a second-loop access comes first.  The trace-based
    # analyzer records dependences in *execution* order, which shows the
    # reversal in either of two shapes: a cross dependence whose source
    # is a second-loop statement (e.g. a consumer reading rows the
    # producer has not written yet surfaces as anti ``B→A`` carried by
    # the fused loop), or a first-to-second dependence whose outer
    # direction turned ">".
    for fdep in fused_deps:
        if fdep.src >= n_a > fdep.dst:
            return False
        if fdep.src < n_a <= fdep.dst and fdep.direction:
            if fdep.direction[0] == ">":
                return False
    return True


def _rename_bound(bound, mapping: Mapping[str, str]):
    return bound.rename(mapping)


def _rename_node(node: Node, mapping: Mapping[str, str]) -> Node:
    subst = {old: AffineExpr.variable(new) for old, new in mapping.items()}
    if isinstance(node, Assign):
        return node.substitute(subst)
    if isinstance(node, Loop):
        node.lower = node.lower.substitute(subst)
        node.upper = node.upper.substitute(subst)
        node.body = [_rename_node(c, mapping) for c in node.body]
        return node
    if isinstance(node, Guard):
        node.body = [_rename_node(c, mapping) for c in node.body]
        node.else_body = [_rename_node(c, mapping) for c in node.else_body]
        return node
    return node
