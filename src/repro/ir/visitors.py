"""Traversal and rewriting helpers for the loop-nest IR.

Transforms in :mod:`repro.transforms` are written against these utilities so
each one stays focused on its own loop-level logic.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from .ast import Assign, Guard, Loop, Node, Stage

__all__ = [
    "walk",
    "walk_with_context",
    "iter_statements",
    "iter_loops",
    "find_loop",
    "find_loop_path",
    "replace_node",
    "enclosing_loop_vars",
    "loop_nest_chain",
    "perfect_nest",
    "map_statements",
    "count_nodes",
]


def walk(body: Sequence[Node]) -> Iterator[Node]:
    """Yield every node in ``body``, preorder."""
    stack: List[Node] = list(reversed(body))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Loop):
            stack.extend(reversed(node.body))
        elif isinstance(node, Guard):
            stack.extend(reversed(node.body + node.else_body))


def walk_with_context(
    body: Sequence[Node], _loops: Tuple[Loop, ...] = ()
) -> Iterator[Tuple[Node, Tuple[Loop, ...]]]:
    """Yield ``(node, enclosing_loops)`` pairs, preorder."""
    for node in body:
        yield node, _loops
        if isinstance(node, Loop):
            yield from walk_with_context(node.body, _loops + (node,))
        elif isinstance(node, Guard):
            yield from walk_with_context(node.body, _loops)
            yield from walk_with_context(node.else_body, _loops)


def iter_statements(body: Sequence[Node]) -> Iterator[Assign]:
    for node in walk(body):
        if isinstance(node, Assign):
            yield node


def iter_loops(body: Sequence[Node]) -> Iterator[Loop]:
    for node in walk(body):
        if isinstance(node, Loop):
            yield node


def find_loop(body: Sequence[Node], label: str) -> Optional[Loop]:
    for loop in iter_loops(body):
        if loop.label == label:
            return loop
    return None


def find_loop_path(body: Sequence[Node], label: str) -> Optional[Tuple[Loop, ...]]:
    """Return the chain of loops from outermost down to the labeled loop."""
    for node, loops in walk_with_context(body):
        if isinstance(node, Loop) and node.label == label:
            return loops + (node,)
    return None


def replace_node(body: List[Node], old: Node, new: Sequence[Node]) -> bool:
    """Replace ``old`` (by identity) with the nodes in ``new``. In place.

    Returns True when a replacement happened.
    """
    for idx, node in enumerate(body):
        if node is old:
            body[idx : idx + 1] = list(new)
            return True
        if isinstance(node, Loop):
            if replace_node(node.body, old, new):
                return True
        elif isinstance(node, Guard):
            if replace_node(node.body, old, new):
                return True
            if replace_node(node.else_body, old, new):
                return True
    return False


def enclosing_loop_vars(body: Sequence[Node], target: Node) -> Optional[Tuple[str, ...]]:
    """Loop variables of all loops enclosing ``target`` (identity match)."""
    for node, loops in walk_with_context(body):
        if node is target:
            return tuple(loop.var for loop in loops)
    return None


def loop_nest_chain(loop: Loop) -> List[Loop]:
    """The maximal chain of singly-nested loops starting at ``loop``."""
    chain = [loop]
    current = loop
    while len(current.body) == 1 and isinstance(current.body[0], Loop):
        current = current.body[0]
        chain.append(current)
    return chain


def perfect_nest(loop: Loop) -> Tuple[List[Loop], List[Node]]:
    """Split a perfectly nested chain into its loops and the innermost body."""
    chain = loop_nest_chain(loop)
    return chain, chain[-1].body


def map_statements(body: List[Node], fn: Callable[[Assign], Assign]) -> None:
    """Rewrite every statement with ``fn``. In place."""
    for idx, node in enumerate(body):
        if isinstance(node, Assign):
            body[idx] = fn(node)
        elif isinstance(node, Loop):
            map_statements(node.body, fn)
        elif isinstance(node, Guard):
            map_statements(node.body, fn)
            map_statements(node.else_body, fn)


def count_nodes(body: Sequence[Node]) -> int:
    return sum(1 for _ in walk(body))


def stage_statements(stage: Stage) -> List[Assign]:
    return list(iter_statements(stage.body))
