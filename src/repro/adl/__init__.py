"""ADL: the Adaptor Definition Language (paper §IV-A)."""

from .adaptor import Adaptor, AdaptorRule, Condition
from .builtin import (
    ADAPTOR_SOLVER,
    ADAPTOR_SYMMETRY,
    ADAPTOR_TRANSPOSE,
    ADAPTOR_TRIANGULAR,
    BUILTIN_ADAPTORS,
)
from .parser import AdlError, parse_adaptor, parse_adaptors

__all__ = [
    "ADAPTOR_SOLVER",
    "ADAPTOR_SYMMETRY",
    "ADAPTOR_TRANSPOSE",
    "ADAPTOR_TRIANGULAR",
    "Adaptor",
    "AdaptorRule",
    "AdlError",
    "BUILTIN_ADAPTORS",
    "Condition",
    "parse_adaptor",
    "parse_adaptors",
]
