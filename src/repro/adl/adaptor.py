"""Adaptor model for the ADL (Adaptor Definition Language), paper §IV-A.

An *adaptor* relates a new routine to an existing optimization scheme by
describing, in terms of optimization components, the alternative ways a
matrix variation (transposed / symmetric / triangular / solver-updated)
can be folded into the scheme::

    adaptor name(object):
      | optimization component invocation sequence 1  {cond(condition 1)}
      | optimization component invocation sequence 2  {cond(condition 2)}
      ...

Each rule yields one candidate family; an empty rule means "leave the
matrix as is".  Conditions make the generated code multi-versioned (e.g.
``blank(X).zero = true`` for padding).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..epod.script import Invocation

__all__ = ["AdaptorRule", "Adaptor", "Condition"]


@dataclass(frozen=True)
class Condition:
    """A rule condition such as ``blank(X).zero = true``.

    ``flag(obj)`` maps the condition to the runtime flag the generated
    multi-versioned code tests (``check_blank_zero`` in the paper's
    example).
    """

    text: str

    _BLANK_RE = re.compile(r"blank\((?P<obj>\w+)\)\.zero\s*=\s*true")

    def instantiate(self, obj: str) -> "Condition":
        return Condition(self.text.replace("X", obj))

    def flag(self) -> Optional[str]:
        match = self._BLANK_RE.fullmatch(self.text.strip())
        if match:
            return f"blank_zero_{match.group('obj')}"
        return None

    def __str__(self):
        return f"cond({self.text})"


@dataclass(frozen=True)
class AdaptorRule:
    """One alternative implementation: a component sequence + condition."""

    invocations: Tuple[Invocation, ...] = ()
    condition: Optional[Condition] = None

    @property
    def is_empty(self) -> bool:
        return not self.invocations

    def instantiate(self, obj: str) -> "AdaptorRule":
        """Substitute the adaptor's formal parameter with a concrete array."""
        new_invs = tuple(
            Invocation(
                inv.component,
                tuple(obj if a == "X" else a for a in inv.args),
                inv.outputs,
            )
            for inv in self.invocations
        )
        cond = self.condition.instantiate(obj) if self.condition else None
        return AdaptorRule(new_invs, cond)

    def render(self) -> str:
        seq = " ".join(inv.render() for inv in self.invocations)
        cond = f" {{{self.condition}}}" if self.condition else ""
        return f"| {seq}{cond}" if (seq or cond) else "|"


@dataclass(frozen=True)
class Adaptor:
    """A named adaptor with its alternative rules (formal parameter ``X``)."""

    name: str
    param: str
    rules: Tuple[AdaptorRule, ...]

    def instantiate(self, obj: str) -> List[AdaptorRule]:
        """All alternative implementations for a concrete object."""
        return [rule.instantiate(obj) for rule in self.rules]

    def render(self) -> str:
        lines = [f"adaptor {self.name}({self.param}):"]
        lines.extend(f"  {rule.render()}" for rule in self.rules)
        return "\n".join(lines)
