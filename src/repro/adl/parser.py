"""Textual parser for the ADL (paper §IV-A syntax).

Accepted form::

    adaptor Adaptor_Triangular(X):
      |
      | peel_triangular(X);
      | padding_triangular(X); {cond(blank(X).zero = true)}

A rule starts at ``|``; its component invocations are ``;``-separated and
may continue on following lines until the next ``|`` or end of adaptor.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..epod.script import ScriptError, parse_script
from .adaptor import Adaptor, AdaptorRule, Condition

__all__ = ["parse_adaptor", "parse_adaptors", "AdlError"]


class AdlError(ValueError):
    """Malformed ADL text."""


_HEADER_RE = re.compile(r"^\s*adaptor\s+(?P<name>\w+)\s*\(\s*(?P<param>\w+)\s*\)\s*:\s*$")
_COND_RE = re.compile(r"\{\s*cond\(\s*(?P<text>[^)]*(?:\)[^}]*)?)\s*\)\s*\}")


def _parse_rule(text: str) -> AdaptorRule:
    condition: Optional[Condition] = None
    cond_match = _COND_RE.search(text)
    if cond_match:
        condition = Condition(cond_match.group("text").strip())
        text = text[: cond_match.start()] + text[cond_match.end():]
    text = text.strip()
    if not text:
        return AdaptorRule((), condition)
    # One rule may hold several ';'-separated invocations on one line.
    statements = "\n".join(part.strip() + ";" for part in text.split(";") if part.strip())
    try:
        script = parse_script(statements)
    except ScriptError as exc:
        raise AdlError(f"bad rule {text!r}: {exc}") from exc
    for inv in script:
        if inv.outputs:
            raise AdlError("adaptor rules cannot bind output labels")
    return AdaptorRule(tuple(script.invocations), condition)


def parse_adaptor(text: str) -> Adaptor:
    """Parse a single adaptor definition."""
    adaptors = parse_adaptors(text)
    if len(adaptors) != 1:
        raise AdlError(f"expected exactly one adaptor, found {len(adaptors)}")
    return adaptors[0]


def parse_adaptors(text: str) -> List[Adaptor]:
    """Parse a file containing one or more adaptor definitions."""
    adaptors: List[Adaptor] = []
    name: Optional[str] = None
    param: Optional[str] = None
    rules: List[AdaptorRule] = []
    current: Optional[List[str]] = None

    def flush_rule():
        nonlocal current
        if current is not None:
            rules.append(_parse_rule(" ".join(current)))
            current = None

    def flush_adaptor():
        nonlocal name, param, rules
        flush_rule()
        if name is not None:
            if not rules:
                raise AdlError(f"adaptor {name} has no rules")
            adaptors.append(Adaptor(name, param or "X", tuple(rules)))
        name, param, rules = None, None, []

    for raw in text.splitlines():
        line = raw.split("//")[0].rstrip()
        if not line.strip():
            continue
        header = _HEADER_RE.match(line)
        if header:
            flush_adaptor()
            name = header.group("name")
            param = header.group("param")
            continue
        stripped = line.strip()
        if stripped.startswith("|"):
            if name is None:
                raise AdlError(f"rule outside adaptor: {raw!r}")
            flush_rule()
            current = [stripped[1:].strip()]
        else:
            if current is None:
                raise AdlError(f"unexpected line: {raw!r}")
            current.append(stripped)
    flush_adaptor()
    if not adaptors:
        raise AdlError("no adaptor definitions found")
    return adaptors
