"""The four built-in adaptors, defined verbatim from paper §IV-A.

Each is parsed from the ADL text the paper prints, so the definitions stay
human-auditable against the publication.
"""

from __future__ import annotations

from typing import Dict

from .adaptor import Adaptor
from .parser import parse_adaptor

__all__ = [
    "ADAPTOR_TRANSPOSE",
    "ADAPTOR_SYMMETRY",
    "ADAPTOR_TRIANGULAR",
    "ADAPTOR_SOLVER",
    "BUILTIN_ADAPTORS",
]

# §IV-A.1: empty rule / global-memory remap / shared-memory transposition.
ADAPTOR_TRANSPOSE = parse_adaptor(
    """
    adaptor Adaptor_Transpose(X):
      |
      | GM_map(X, Transpose);
      | SM_alloc(X, Transpose);
    """
)

# §IV-A.2: empty rule / remap-to-full + re-format / re-format + shared tile.
ADAPTOR_SYMMETRY = parse_adaptor(
    """
    adaptor Adaptor_Symmetry(X):
      |
      | GM_map(X, Symmetry); format_iteration(X, Symmetry);
      | format_iteration(X, Symmetry); SM_alloc(X, Symmetry);
    """
)

# §IV-A.3: peel, or pad under the blank-zero condition (multi-versioned).
# The leading empty rule yields the un-adapted sequence — the paper's
# filter walkthrough (§IV-B.2) enumerates it as Sequence 1.
ADAPTOR_TRIANGULAR = parse_adaptor(
    """
    adaptor Adaptor_Triangular(X):
      |
      | peel_triangular(X);
      | padding_triangular(X); {cond(blank(X).zero = true)}
    """
)

# §IV-A.4: the TRSM update — peel the triangular area and bind it to one
# thread of the block (Fig. 7 workload distribution).
ADAPTOR_SOLVER = parse_adaptor(
    """
    adaptor Adaptor_Solver(X):
      | peel_triangular(X); binding_triangular(X, 0);
    """
)

BUILTIN_ADAPTORS: Dict[str, Adaptor] = {
    a.name: a
    for a in (
        ADAPTOR_TRANSPOSE,
        ADAPTOR_SYMMETRY,
        ADAPTOR_TRIANGULAR,
        ADAPTOR_SOLVER,
    )
}
