"""Code generation: kernel analysis for the performance model + CUDA emission."""

from .analysis import (
    AccessModel,
    KernelModel,
    LARGE_STRIDE,
    PhaseModel,
    analyze_computation,
    analyze_stage,
)
from .cuda import CudaEmitter, emit_cuda, emit_kernel

__all__ = [
    "AccessModel",
    "CudaEmitter",
    "KernelModel",
    "LARGE_STRIDE",
    "PhaseModel",
    "analyze_computation",
    "analyze_stage",
    "emit_cuda",
    "emit_kernel",
]
