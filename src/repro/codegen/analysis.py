"""Static kernel analysis: extract a performance model from transformed IR.

Walks a compute stage in canonical form (block loops → phases →
per-thread loops) and summarises, per phase:

* arithmetic work (FLOPs, instruction estimate honouring unroll factors
  and fused multiply-add),
* memory accesses per space (global / shared / register) with their
  **per-thread distinct counts** (a reference invariant in an inner loop
  is register-cached by scalar replacement, so it is counted once per
  distinct index, not once per iteration), and
* the element stride between *consecutive threads* (``threadIdx.x``)
  for each access — the input to the coalescing and bank-conflict models.

Loops with data-dependent (min/max) bounds are counted with their
*average* trip over the enclosing domain — triangular reductions come out
at the expected ½ factor.  The result is an estimate by construction; the
counters it produces are compared to the paper's profiles by shape, not
digit (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..ir.affine import AffineExpr, Bound, MinExpr
from ..ir.ast import (
    And,
    Assign,
    Barrier,
    BinOp,
    Cmp,
    Computation,
    Flag,
    Guard,
    Loop,
    Node,
    Stage,
)

__all__ = ["AccessModel", "PhaseModel", "KernelModel", "analyze_stage", "analyze_computation"]

#: stride magnitude treated as "row jump" (fully scattered across threads)
LARGE_STRIDE = 1 << 20


@dataclass
class AccessModel:
    """One array reference's aggregate behaviour in a phase."""

    array: str
    space: str  # "global" | "shared" | "register"
    kind: str  # "load" | "store"
    count_per_block: float  # distinct accesses per block (thread-summed)
    stride_tx: int  # element stride between consecutive threads
    serial: bool = False
    #: scattered across threads but each thread walks consecutive
    #: addresses (a column walk) — cache-amortised on Fermi
    thread_sequential: bool = False


@dataclass
class PhaseModel:
    kind: str  # compute / copy / regload / regstore
    serial: bool
    threads: int
    flops_per_block: float = 0.0
    insts_per_block: float = 0.0
    accesses: List[AccessModel] = field(default_factory=list)


@dataclass
class KernelModel:
    """Launch-level performance summary of one stage."""

    name: str
    role: str
    grid_blocks: float
    threads_per_block: int
    regs_per_thread: int
    smem_bytes: int
    barriers_per_block: float
    phases: List[PhaseModel]

    @property
    def flops_per_block(self) -> float:
        return sum(p.flops_per_block for p in self.phases)

    @property
    def insts_per_block(self) -> float:
        return sum(p.insts_per_block for p in self.phases)

    def total_flops(self) -> float:
        return self.flops_per_block * self.grid_blocks

    def total_insts(self) -> float:
        return self.insts_per_block * self.grid_blocks

    def accesses(self) -> List[Tuple[AccessModel, float]]:
        """(access, total executions) across the launch."""
        return [
            (a, a.count_per_block * self.grid_blocks)
            for p in self.phases
            for a in p.accesses
        ]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _avg_bound(bound: Bound, env: Mapping[str, float]) -> float:
    if isinstance(bound, AffineExpr):
        return bound.offset + sum(c * env.get(v, 0.0) for v, c in bound.terms.items())
    values = [_avg_bound(op, env) for op in bound.operands]
    return min(values) if isinstance(bound, MinExpr) else max(values)


def _avg_trip(
    loop: Loop, env: Mapping[str, float], thread_vars: Tuple[str, ...] = ()
) -> float:
    """Expected trip count over the enclosing domain.

    Thread-distributed loops (``for ci = tx; ci < E; ci += TX``) have a
    *clamped* per-thread trip; the expectation over threads equals
    ``E / step``, which is what evaluating the lower bound at thread
    index 0 yields — so thread variables are zeroed in the lower bound.
    """
    lo_env = env
    if thread_vars and any(loop.lower.depends_on(v) for v in thread_vars):
        lo_env = dict(env)
        for v in thread_vars:
            lo_env[v] = 0.0
    lo = _avg_bound(loop.lower, lo_env)
    hi = _avg_bound(loop.upper, env)
    return max(0.0, (hi - lo) / loop.step)


def _is_serial_guard(cond) -> Optional[bool]:
    """True when the guard pins the thread indices to constants."""
    cmps = cond.operands if isinstance(cond, And) else (cond,)
    pins = 0
    for c in cmps:
        if not isinstance(c, Cmp) or c.op != "==":
            return None
        lhs_vars = c.lhs.free_vars()
        if lhs_vars and all(v in ("tx", "ty") for v in lhs_vars):
            pins += 1
    return pins >= 2 if pins else None


def _fma_insts(stmt: Assign) -> float:
    """Instruction estimate for one statement execution.

    ``x += a*b`` fuses into one MAD; other arithmetic counts one
    instruction per operator; division costs extra on all three chips.
    """
    flops = stmt.flop_count()
    insts = float(flops)
    if stmt.op in ("+=", "-=") and isinstance(stmt.expr, BinOp) and stmt.expr.op == "*":
        insts = max(1.0, flops - 1)  # multiply-accumulate fusion
    expr_repr = repr(stmt.expr)
    if "/" in expr_repr or "1/" in expr_repr:
        insts += 8  # fp32 division microcode
    return insts


class _StrideContext:
    """Resolves element strides w.r.t. threadIdx.x inside a phase."""

    def __init__(self, comp: Computation, tx_var: Optional[str], loops: List[Loop]):
        self.comp = comp
        self.tx_var = tx_var
        # Loop vars whose *origin* depends on tx (e.g. copy loops with
        # lower bound tx): substitute their lower bound for stride purposes.
        self.subst: Dict[str, AffineExpr] = {}
        for lp in loops:
            lower = lp.lower
            if isinstance(lower, AffineExpr) and tx_var and lower.depends_on(tx_var):
                self.subst[lp.var] = lower

    def _tx_coeff(self, expr: AffineExpr) -> int:
        if not self.tx_var:
            return 0
        resolved = expr.substitute(self.subst) if self.subst else expr
        return resolved.coeff(self.tx_var)

    def stride(self, array_name: str, indices: Tuple[AffineExpr, ...]) -> int:
        arr = self.comp.arrays[array_name]
        if arr.rank == 1:
            return self._tx_coeff(indices[0])
        c0 = self._tx_coeff(indices[0])
        c1 = self._tx_coeff(indices[1])
        if arr.storage == "shared":
            # Row layout: pitch is the (padded) minor dimension.
            pitch = int(arr.dims[1].constant_value)
            return c0 * pitch + c1
        if arr.layout == "col":
            # Column-major: first subscript is stride-1, second jumps rows.
            return c0 + c1 * LARGE_STRIDE
        return c1 + c0 * LARGE_STRIDE


# ---------------------------------------------------------------------------
# the walker
# ---------------------------------------------------------------------------


class _StageAnalyzer:
    def __init__(self, comp: Computation, stage: Stage, sizes: Mapping[str, int]):
        self.comp = comp
        self.stage = stage
        self.env: Dict[str, float] = {k: float(v) for k, v in sizes.items()}
        self.grid_blocks = 1.0
        self.threads_per_block = 1
        self.barriers = 0.0
        self.phases: List[PhaseModel] = []

    def run(self) -> KernelModel:
        if self.stage.role == "remap":
            model = self._remap_model()
        else:
            self._walk_block(self.stage.body, mult=1.0)
            model = KernelModel(
                name=self.stage.name,
                role=self.stage.role,
                grid_blocks=self.grid_blocks,
                threads_per_block=self.threads_per_block,
                regs_per_thread=self._regs_per_thread(),
                smem_bytes=self._smem_bytes(),
                barriers_per_block=self.barriers,
                phases=self.phases,
            )
        return model

    # -- resources -----------------------------------------------------
    def _regs_per_thread(self) -> int:
        regs = 14  # addressing, loop counters, staging temporaries
        tpb = max(1, self.threads_per_block)
        for arr in self.comp.arrays.values():
            if arr.storage == "register":
                total = 1
                for d in arr.dims:
                    total *= int(d.constant_value)
                regs += max(1, total // tpb)
        return regs

    def _smem_bytes(self) -> int:
        total = 0
        for arr in self.comp.arrays.values():
            if arr.storage == "shared":
                elems = 1
                for d in arr.dims:
                    elems *= int(d.constant_value)
                total += elems * 4
        return total

    # -- remap stages ----------------------------------------------------
    def _remap_model(self) -> KernelModel:
        """GM_map's data-remapping kernel: a memory-bound 2-D copy.

        Modeled as a standard 16x16-thread transpose/copy grid (that is
        what the thread-grouping of §IV-A.1 step 2 produces).
        """
        loops = [n for n in self.stage.body if isinstance(n, Loop)]
        outer = loops[0]
        inner = outer.body[0]
        d0 = _avg_bound(outer.upper, self.env)
        d1 = _avg_bound(inner.upper, self.env)
        elements = d0 * d1
        threads = 256
        blocks = max(1.0, elements / threads)
        phase = PhaseModel(kind="copy", serial=False, threads=threads)
        phase.flops_per_block = 0.0
        phase.insts_per_block = 6.0 * threads  # ld + st + addressing
        phase.accesses = [
            AccessModel("__src__", "global", "load", float(threads), 1),
            # Transpose writes jump rows from the warp's point of view.
            AccessModel("__dst__", "global", "store", float(threads), LARGE_STRIDE),
        ]
        return KernelModel(
            name=self.stage.name,
            role="remap",
            grid_blocks=blocks,
            threads_per_block=threads,
            regs_per_thread=10,
            smem_bytes=0,
            barriers_per_block=0.0,
            phases=[phase],
        )

    # -- block level -----------------------------------------------------
    def _walk_block(self, body: List[Node], mult: float) -> None:
        for node in body:
            if isinstance(node, Loop):
                if node.mapped_to in ("block.x", "block.y", "block.z"):
                    trip = _avg_trip(node, self.env)
                    self.grid_blocks *= max(1.0, trip)
                    self.env[node.var] = (
                        _avg_bound(node.lower, self.env)
                        + (max(1.0, trip) - 1) / 2 * node.step
                    )
                    self._walk_block(node.body, mult)
                elif node.mapped_to == "thread.x":
                    self._walk_phase(node, mult)
                else:
                    trip = _avg_trip(node, self.env)
                    self.env[node.var] = (
                        _avg_bound(node.lower, self.env)
                        + (max(1.0, trip) - 1) / 2 * node.step
                    )
                    self._walk_block(node.body, mult * max(0.0, trip))
            elif isinstance(node, Barrier):
                self.barriers += mult
            elif isinstance(node, Guard):
                flag_on = self._flag_value(node.cond)
                if flag_on is True:
                    self._walk_block(node.body, mult)
                elif flag_on is False:
                    self._walk_block(node.else_body, mult)
                else:
                    self._walk_block(node.body, mult * 0.5)
                    self._walk_block(node.else_body, mult * 0.5)
            elif isinstance(node, Assign):
                # Block-level statement outside any phase: negligible.
                continue

    def _flag_value(self, cond) -> Optional[bool]:
        if isinstance(cond, Flag):
            return bool(self.comp.flags.get(cond.name, True))
        return None

    # -- phase level -----------------------------------------------------
    def _walk_phase(self, phase: Loop, mult: float) -> None:
        from ..transforms.util import phase_kind

        tx_loop = phase
        ty_loop = phase.body[0] if phase.body and isinstance(phase.body[0], Loop) else None
        tx_n = int(_avg_trip(tx_loop, self.env))
        ty_n = int(_avg_trip(ty_loop, self.env)) if ty_loop is not None and ty_loop.mapped_to == "thread.y" else 1
        threads = max(1, tx_n * ty_n)
        self.threads_per_block = max(self.threads_per_block, threads)

        model = PhaseModel(kind=phase_kind(phase), serial=False, threads=threads)
        env = dict(self.env)
        env[tx_loop.var] = (tx_n - 1) / 2
        inner_body = ty_loop.body if ty_loop is not None and ty_loop.mapped_to == "thread.y" else phase.body
        if ty_loop is not None and ty_loop.mapped_to == "thread.y":
            env[ty_loop.var] = (ty_n - 1) / 2

        tvars = (tx_loop.var,) + (
            (ty_loop.var,) if ty_loop is not None and ty_loop.mapped_to == "thread.y" else ()
        )
        self._walk_thread(
            inner_body,
            env,
            per_thread_mult=mult,
            loops=[],
            model=model,
            serial=False,
            tx_var=tx_loop.var,
            threads=threads,
            thread_vars=tvars,
        )
        self.phases.append(model)

    def _walk_thread(
        self,
        body: List[Node],
        env: Dict[str, float],
        per_thread_mult: float,
        loops: List[Loop],
        model: PhaseModel,
        serial: bool,
        tx_var: str,
        threads: int,
        thread_vars: Tuple[str, ...] = (),
    ) -> None:
        for node in body:
            if isinstance(node, Loop):
                trip = _avg_trip(node, env, thread_vars)
                env2 = dict(env)
                env2[node.var] = (
                    _avg_bound(node.lower, env) + (max(1.0, trip) - 1) / 2 * node.step
                )
                # Loop bookkeeping instructions (amortised by unrolling).
                overhead = 2.0 * trip / max(1, node.unroll)
                weight = per_thread_mult * (1 if serial else threads)
                model.insts_per_block += overhead * weight
                self._walk_thread(
                    node.body,
                    env2,
                    per_thread_mult * trip,
                    loops + [node],
                    model,
                    serial,
                    tx_var,
                    threads,
                    thread_vars,
                )
            elif isinstance(node, Guard):
                pinned = _is_serial_guard(node.cond)
                flag_on = self._flag_value(node.cond)
                if pinned:
                    model.serial = True
                    self._walk_thread(
                        node.body, env, per_thread_mult, loops, model, True, tx_var, threads, thread_vars
                    )
                elif flag_on is True:
                    self._walk_thread(node.body, env, per_thread_mult, loops, model, serial, tx_var, threads, thread_vars)
                elif flag_on is False:
                    self._walk_thread(node.else_body, env, per_thread_mult, loops, model, serial, tx_var, threads, thread_vars)
                else:
                    self._walk_thread(node.body, env, per_thread_mult * 0.5, loops, model, serial, tx_var, threads, thread_vars)
                    self._walk_thread(node.else_body, env, per_thread_mult * 0.5, loops, model, serial, tx_var, threads, thread_vars)
            elif isinstance(node, Assign):
                self._account_stmt(
                    node, env, per_thread_mult, loops, model, serial, tx_var, threads, thread_vars
                )
            elif isinstance(node, Barrier):
                continue

    def _account_stmt(
        self,
        stmt: Assign,
        env: Dict[str, float],
        per_thread_mult: float,
        loops: List[Loop],
        model: PhaseModel,
        serial: bool,
        tx_var: str,
        threads: int,
        thread_vars: Tuple[str, ...] = (),
    ) -> None:
        thread_factor = 1 if serial else threads
        execs = per_thread_mult * thread_factor
        model.flops_per_block += stmt.flop_count() * execs
        model.insts_per_block += _fma_insts(stmt) * execs

        strides = _StrideContext(self.comp, None if serial else tx_var, loops)
        loop_vars = {lp.var: lp for lp in loops}

        def account_ref(ref, kind: str) -> None:
            arr = self.comp.arrays.get(ref.array)
            if arr is None or arr.storage == "register":
                return
            # Distinct-access count: only loops the subscripts depend on
            # multiply (invariant loads are register-cached).
            dep_mult = per_thread_mult
            for name, lp in loop_vars.items():
                if not any(idx.depends_on(name) for idx in ref.indices):
                    trip = max(1.0, _avg_trip(lp, env, thread_vars))
                    dep_mult /= trip
            count = dep_mult * thread_factor
            stride = strides.stride(ref.array, ref.indices)
            # Scattered-across-threads accesses where each thread walks
            # consecutive addresses (the minor subscript advances with an
            # inner unit-step loop) amortise through a cache when there is
            # one (Fermi L1).
            seq_walk = False
            if abs(stride) >= LARGE_STRIDE and arr.storage == "global":
                minor = 0 if arr.layout == "col" else arr.rank - 1
                for lname, lp in loop_vars.items():
                    if (
                        abs(ref.indices[minor].coeff(lname)) * lp.step == 1
                        and lp.mapped_to is None
                    ):
                        seq_walk = True
            model.accesses.append(
                AccessModel(
                    ref.array, arr.storage, kind, count, stride, serial, seq_walk
                )
            )
            # Loads/stores occupy instruction slots — but a shared-memory
            # operand folds into the consuming MAD on G80/GT200 and
            # dual-issues with it on Fermi (Volkov's 60%-of-peak recipe),
            # so it costs only half a slot.
            model.insts_per_block += count * (0.5 if arr.storage == "shared" else 1.0)

        for ref in stmt.expr.array_refs():
            account_ref(ref, "load")
        if stmt.op in ("+=", "-="):
            account_ref(stmt.target, "load")
        account_ref(stmt.target, "store")


def analyze_stage(
    comp: Computation, stage: Stage, sizes: Mapping[str, int]
) -> KernelModel:
    """Build the :class:`KernelModel` for one stage."""
    return _StageAnalyzer(comp, stage, sizes).run()


def analyze_computation(
    comp: Computation, sizes: Mapping[str, int]
) -> List[KernelModel]:
    """Kernel models for every stage, launch order preserved."""
    return [analyze_stage(comp, stage, sizes) for stage in comp.stages]
