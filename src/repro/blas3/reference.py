"""NumPy reference semantics for the 24 BLAS3 variants.

Pure-NumPy (float64) oracles used to validate both the OA-generated
kernels and the CUBLAS/MAGMA-like baselines.  Full BLAS semantics —
``alpha``/``beta`` scaling — live here; the IR kernels compute the
``alpha = beta = 1`` core update (see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from .naming import parse_variant

__all__ = ["reference", "densify_symmetric", "densify_triangular", "random_inputs"]


def densify_symmetric(stored: np.ndarray, uplo: str) -> np.ndarray:
    """Rebuild the full symmetric matrix from its stored triangle:
    ``X + Xᵀ − diag(X)`` (paper §III-B, the Symmetry allocation mode)."""
    tri = np.tril(stored) if uplo == "L" else np.triu(stored)
    return tri + tri.T - np.diag(np.diag(tri))


def densify_triangular(stored: np.ndarray, uplo: str, trans: str) -> np.ndarray:
    tri = np.tril(stored) if uplo == "L" else np.triu(stored)
    return tri.T if trans == "T" else tri


def reference(
    name: str,
    inputs: Mapping[str, np.ndarray],
    alpha: float = 1.0,
    beta: float = 1.0,
) -> np.ndarray:
    """Expected result of a variant on ``inputs`` (float64 arithmetic)."""
    v = parse_variant(name)
    a = np.asarray(inputs["A"], dtype=np.float64)
    b = np.asarray(inputs["B"], dtype=np.float64)
    c = np.asarray(inputs["C"], dtype=np.float64) if "C" in inputs else None

    if v.family == "GEMM":
        opa = a.T if v.trans_a == "T" else a
        opb = b.T if v.trans_b == "T" else b
        return alpha * (opa @ opb) + (beta * c if c is not None else 0.0)

    if v.family == "BGEMM":
        opa = a.transpose(0, 2, 1) if v.trans_a == "T" else a
        opb = b.transpose(0, 2, 1) if v.trans_b == "T" else b
        return alpha * np.matmul(opa, opb) + (beta * c if c is not None else 0.0)

    if v.family == "SYMM":
        full = densify_symmetric(a, v.uplo)
        prod = full @ b if v.side == "L" else b @ full
        return alpha * prod + (beta * c if c is not None else 0.0)

    if v.family == "TRMM":
        op = densify_triangular(a, v.uplo, v.trans)
        prod = op @ b if v.side == "L" else b @ op
        return alpha * prod + (beta * c if c is not None else 0.0)

    if v.family == "TRSM":
        op = densify_triangular(a, v.uplo, v.trans)
        if v.side == "L":
            x = np.linalg.solve(op, b)
        else:
            x = np.linalg.solve(op.T, b.T).T
        return alpha * x

    raise ValueError(f"unknown family {v.family!r}")


def random_inputs(
    name: str, sizes: Mapping[str, int], seed: int = 0
) -> Dict[str, np.ndarray]:
    """Structured float32 inputs for a variant (stored triangles, zero
    blanks, boosted diagonals for solves)."""
    v = parse_variant(name)
    rng = np.random.default_rng(seed)
    m, n = sizes["M"], sizes["N"]
    k = sizes.get("K", n)
    out: Dict[str, np.ndarray] = {}

    if v.family == "GEMM":
        a_shape = (m, k) if v.trans_a == "N" else (k, m)
        b_shape = (k, n) if v.trans_b == "N" else (n, k)
        out["A"] = rng.standard_normal(a_shape).astype(np.float32)
        out["B"] = rng.standard_normal(b_shape).astype(np.float32)
        out["C"] = rng.standard_normal((m, n)).astype(np.float32)
        return out

    if v.family == "BGEMM":
        p = sizes.get("P", 1)
        a_shape = (p, m, k) if v.trans_a == "N" else (p, k, m)
        b_shape = (p, k, n) if v.trans_b == "N" else (p, n, k)
        out["A"] = rng.standard_normal(a_shape).astype(np.float32)
        out["B"] = rng.standard_normal(b_shape).astype(np.float32)
        out["C"] = rng.standard_normal((p, m, n)).astype(np.float32)
        return out

    d = m if v.side == "L" else n
    a = rng.standard_normal((d, d)).astype(np.float32)
    a = np.tril(a) if v.uplo == "L" else np.triu(a)
    if v.family == "TRSM":
        a = a + 4.0 * np.eye(d, dtype=np.float32)
    out["A"] = a
    out["B"] = rng.standard_normal((m, n)).astype(np.float32)
    if v.family != "TRSM":
        out["C"] = rng.standard_normal((m, n)).astype(np.float32)
    return out
