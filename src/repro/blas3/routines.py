"""Labeled-source definitions of the 24 BLAS3 routine variants.

Each variant is defined the way the paper presents routines (Fig. 3,
Fig. 14, §IV-A): a labeled C loop nest over column-major matrices, array
declarations carrying the structural facts (symmetric/triangular storage,
zero blanks), developer region annotations for symmetric accesses
(``// for real/shadow area``), and the adaptor assignments that relate the
variant to the GEMM-NN optimization scheme.

Conventions (documented deviations in DESIGN.md):

* kernels compute the ``alpha = beta = 1`` update (``C += op(A)op(B)`` /
  in-place solve); the library applies alpha/beta scaling outside;
* TRMM is written out-of-place into C (the paper's Fig. 14 presentation);
* backward substitutions are expressed with a reversed index
  (``i = M-1-ii``), keeping all loops ascending and bounds affine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.ast import Array, Computation
from ..ir.builder import build_computation
from ..ir.affine import var
from .naming import ALL_VARIANTS, BATCHED_VARIANTS, VariantName, parse_variant

__all__ = [
    "RoutineSpec",
    "get_spec",
    "build_routine",
    "all_specs",
    "infer_sizes",
    "BASE_GEMM_SCRIPT",
    "BASE_BGEMM_SCRIPT",
    "DEFAULT_TUNE_BATCH",
]

#: The GEMM-NN optimization scheme (paper Fig. 3) every variant reuses.
BASE_GEMM_SCRIPT = """
(Lii, Ljj) = thread_grouping((Li, Lj));
(Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
loop_unroll(Ljjj, Lkkk);
SM_alloc(B, Transpose);
Reg_alloc(C);
"""

#: Batched variants claim the outermost batch loop for the grid's z
#: dimension first, then reuse the GEMM scheme per problem.
BASE_BGEMM_SCRIPT = "batch_grid(Lp);" + BASE_GEMM_SCRIPT

#: batch extent used when tuning/verifying a batched routine
DEFAULT_TUNE_BATCH = 8


@dataclass(frozen=True)
class RoutineSpec:
    """Everything the OA framework needs to generate one routine variant."""

    variant: VariantName
    source: str
    arrays: Tuple[Array, ...]
    dim_symbols: Tuple[str, ...]
    #: (adaptor name, object) pairs fed to the composer
    adaptations: Tuple[Tuple[str, str], ...]
    #: the array the routine writes (its result)
    output: str
    #: (stmt position in Lk body -> region) for the symmetric A refs;
    #: "diag" tags the Ld statement.
    regions: Tuple[Tuple[int, str], ...] = ()
    flops_formula: str = ""
    #: maps the base GEMM script's array names (A = per-thread row panel,
    #: B = reduction×column operand, C = output) to this routine's arrays —
    #: right-side variants swap the operand roles.
    role_map: Tuple[Tuple[str, str], ...] = (("A", "A"), ("B", "B"), ("C", "C"))

    def resolve_role(self, name: str) -> str:
        return dict(self.role_map).get(name, name)

    @property
    def name(self) -> str:
        return self.variant.name

    def nominal_flops(self, sizes: Dict[str, int]) -> float:
        m = sizes.get("M", 0)
        n = sizes.get("N", 0)
        k = sizes.get("K", 0)
        p = sizes.get("P", 1)
        return {
            "2MNK": 2.0 * m * n * k,
            "2PMNK": 2.0 * p * m * n * k,
            "2MMN": 2.0 * m * m * n,
            "2MNN": 2.0 * m * n * n,
            "MMN": float(m) * m * n,
            "MNN": float(m) * n * n,
        }[self.flops_formula]

    def make_sizes(
        self, n: int, k: Optional[int] = None, p: Optional[int] = None
    ) -> Dict[str, int]:
        sizes = {"M": n, "N": n}
        if "K" in self.dim_symbols:
            sizes["K"] = k or n
        if "P" in self.dim_symbols:
            sizes["P"] = p or DEFAULT_TUNE_BATCH
        return sizes


def infer_sizes(spec: "RoutineSpec", inputs: Dict) -> Dict[str, int]:
    """Dimension sizes implied by a call's array shapes.

    Shared by :meth:`repro.tuner.library.TunedRoutine.run` and the
    serving runtime's dispatch bucketing (which must size a request
    before any tuned plan exists).
    """
    import numpy as np

    b = np.asarray(inputs["B"])
    if spec.variant.family == "BGEMM":
        a = np.asarray(inputs["A"])
        ta = spec.variant.trans_a
        tb = spec.variant.trans_b
        m = a.shape[1] if ta == "N" else a.shape[2]
        k = a.shape[2] if ta == "N" else a.shape[1]
        n = b.shape[2] if tb == "N" else b.shape[1]
        return {"P": a.shape[0], "M": m, "N": n, "K": k}
    if spec.variant.family == "GEMM":
        a = np.asarray(inputs["A"])
        ta = spec.variant.trans_a
        tb = spec.variant.trans_b
        m = a.shape[0] if ta == "N" else a.shape[1]
        k = a.shape[1] if ta == "N" else a.shape[0]
        n = b.shape[1] if tb == "N" else b.shape[0]
        return {"M": m, "N": n, "K": k}
    return {"M": b.shape[0], "N": b.shape[1]}


def _c(m="M", n="N") -> Array:
    return Array("C", (var(m), var(n)))


def _gemm_spec(ta: str, tb: str) -> RoutineSpec:
    a_ref = "A[i][k]" if ta == "N" else "A[k][i]"
    b_ref = "B[k][j]" if tb == "N" else "B[j][k]"
    a_dims = (var("M"), var("K")) if ta == "N" else (var("K"), var("M"))
    b_dims = (var("K"), var("N")) if tb == "N" else (var("N"), var("K"))
    source = f"""
    Li: for (i = 0; i < M; i++)
    Lj:   for (j = 0; j < N; j++)
    Lk:     for (k = 0; k < K; k++)
              C[i][j] += {a_ref} * {b_ref};
    """
    adaptations = []
    if ta == "T":
        adaptations.append(("Adaptor_Transpose", "A"))
    if tb == "T":
        adaptations.append(("Adaptor_Transpose", "B"))
    return RoutineSpec(
        variant=VariantName("GEMM", trans_a=ta, trans_b=tb),
        source=source,
        arrays=(Array("A", a_dims), Array("B", b_dims), _c()),
        dim_symbols=("M", "N", "K"),
        adaptations=tuple(adaptations),
        output="C",
        flops_formula="2MNK",
    )


def _bgemm_spec(ta: str, tb: str) -> RoutineSpec:
    a_ref = "A[p][i][k]" if ta == "N" else "A[p][k][i]"
    b_ref = "B[p][k][j]" if tb == "N" else "B[p][j][k]"
    a_dims = (
        (var("P"), var("M"), var("K"))
        if ta == "N"
        else (var("P"), var("K"), var("M"))
    )
    b_dims = (
        (var("P"), var("K"), var("N"))
        if tb == "N"
        else (var("P"), var("N"), var("K"))
    )
    source = f"""
    Lp: for (p = 0; p < P; p++)
    Li:   for (i = 0; i < M; i++)
    Lj:     for (j = 0; j < N; j++)
    Lk:       for (k = 0; k < K; k++)
                C[p][i][j] += {a_ref} * {b_ref};
    """
    adaptations = []
    if ta == "T":
        adaptations.append(("Adaptor_Transpose", "A"))
    if tb == "T":
        adaptations.append(("Adaptor_Transpose", "B"))
    return RoutineSpec(
        variant=VariantName("BGEMM", trans_a=ta, trans_b=tb),
        source=source,
        arrays=(
            Array("A", a_dims),
            Array("B", b_dims),
            Array("C", (var("P"), var("M"), var("N"))),
        ),
        dim_symbols=("P", "M", "N", "K"),
        adaptations=tuple(adaptations),
        output="C",
        flops_formula="2PMNK",
    )


def _symm_spec(side: str, uplo: str) -> RoutineSpec:
    sym_dim = "M" if side == "L" else "N"
    if side == "L":
        stored = "A[i][k]" if uplo == "L" else "A[k][i]"
        first_region = "real" if uplo == "L" else "shadow"
        source = f"""
        Li: for (i = 0; i < M; i++)
        Lj:   for (j = 0; j < N; j++) {{
        Lk:     for (k = 0; k < i; k++) {{
                  C[i][j] += {stored} * B[k][j];
                  C[k][j] += {stored} * B[i][j];
                }}
        Ld:     C[i][j] += A[i][i] * B[i][j];
              }}
        """
    else:
        stored = "A[j][k]" if uplo == "L" else "A[k][j]"
        first_region = "shadow" if uplo == "L" else "real"
        source = f"""
        Li: for (i = 0; i < M; i++)
        Lj:   for (j = 0; j < N; j++) {{
        Lk:     for (k = 0; k < j; k++) {{
                  C[i][j] += B[i][k] * {stored};
                  C[i][k] += B[i][j] * {stored};
                }}
        Ld:     C[i][j] += B[i][j] * A[j][j];
              }}
        """
    second_region = "shadow" if first_region == "real" else "real"
    return RoutineSpec(
        variant=VariantName("SYMM", side=side, uplo=uplo),
        source=source,
        arrays=(
            Array(
                "A",
                (var(sym_dim), var(sym_dim)),
                symmetric="lower" if uplo == "L" else "upper",
            ),
            Array("B", (var("M"), var("N"))),
            _c(),
        ),
        dim_symbols=("M", "N"),
        adaptations=(("Adaptor_Symmetry", "A"),),
        output="C",
        regions=((0, first_region), (1, second_region), (2, "diag")),
        flops_formula="2MMN" if side == "L" else "2MNN",
        role_map=(
            (("A", "A"), ("B", "B"), ("C", "C"))
            if side == "L"
            else (("A", "B"), ("B", "A"), ("C", "C"))
        ),
    )


_TRMM_BODY = {
    # (side, uplo, trans) -> (k-range, A reference)
    ("L", "L", "N"): ("for (k = 0; k <= i; k++)", "A[i][k] * B[k][j]"),
    ("L", "L", "T"): ("for (k = i; k < M; k++)", "A[k][i] * B[k][j]"),
    ("L", "U", "N"): ("for (k = i; k < M; k++)", "A[i][k] * B[k][j]"),
    ("L", "U", "T"): ("for (k = 0; k <= i; k++)", "A[k][i] * B[k][j]"),
    ("R", "L", "N"): ("for (k = j; k < N; k++)", "B[i][k] * A[k][j]"),
    ("R", "L", "T"): ("for (k = 0; k <= j; k++)", "B[i][k] * A[j][k]"),
    ("R", "U", "N"): ("for (k = 0; k <= j; k++)", "B[i][k] * A[k][j]"),
    ("R", "U", "T"): ("for (k = j; k < N; k++)", "B[i][k] * A[j][k]"),
}


def _trmm_spec(side: str, uplo: str, trans: str) -> RoutineSpec:
    krange, expr = _TRMM_BODY[(side, uplo, trans)]
    tri_dim = "M" if side == "L" else "N"
    source = f"""
    Li: for (i = 0; i < M; i++)
    Lj:   for (j = 0; j < N; j++)
    Lk:     {krange}
              C[i][j] += {expr};
    """
    return RoutineSpec(
        variant=VariantName("TRMM", side=side, uplo=uplo, trans=trans),
        source=source,
        arrays=(
            Array(
                "A",
                (var(tri_dim), var(tri_dim)),
                triangular="lower" if uplo == "L" else "upper",
                zero_blank=True,
            ),
            Array("B", (var("M"), var("N"))),
            _c(),
        ),
        dim_symbols=("M", "N"),
        adaptations=(
            (("Adaptor_Transpose", "A"),) if trans == "T" else ()
        )
        + (("Adaptor_Triangular", "A"),),
        output="C",
        flops_formula="MMN" if side == "L" else "MNN",
        role_map=(
            (("A", "A"), ("B", "B"), ("C", "C"))
            if side == "L"
            else (("A", "B"), ("B", "A"), ("C", "C"))
        ),
    )


# TRSM: {key: (forward?, left?, k-range, update expr, pivot ref)}
# Backward substitutions use a reversed index (rv = M-1-ii / N-1-jj).
_TRSM_FORMS = {
    ("L", "L", "N"): (
        """
        Li: for (i = 0; i < M; i++)
        Lj:   for (j = 0; j < N; j++) {
        Lk:     for (k = 0; k < i; k++)
                  B[i][j] -= A[i][k] * B[k][j];
        Ld:     B[i][j] = B[i][j] / A[i][i];
              }
        """
    ),
    ("L", "U", "T"): (
        """
        Li: for (i = 0; i < M; i++)
        Lj:   for (j = 0; j < N; j++) {
        Lk:     for (k = 0; k < i; k++)
                  B[i][j] -= A[k][i] * B[k][j];
        Ld:     B[i][j] = B[i][j] / A[i][i];
              }
        """
    ),
    ("L", "L", "T"): (
        """
        Li: for (ii = 0; ii < M; ii++)
        Lj:   for (j = 0; j < N; j++) {
        Lk:     for (k = M - ii; k < M; k++)
                  B[M - 1 - ii][j] -= A[k][M - 1 - ii] * B[k][j];
        Ld:     B[M - 1 - ii][j] = B[M - 1 - ii][j] / A[M - 1 - ii][M - 1 - ii];
              }
        """
    ),
    ("L", "U", "N"): (
        """
        Li: for (ii = 0; ii < M; ii++)
        Lj:   for (j = 0; j < N; j++) {
        Lk:     for (k = M - ii; k < M; k++)
                  B[M - 1 - ii][j] -= A[M - 1 - ii][k] * B[k][j];
        Ld:     B[M - 1 - ii][j] = B[M - 1 - ii][j] / A[M - 1 - ii][M - 1 - ii];
              }
        """
    ),
    ("R", "U", "N"): (
        """
        Li: for (i = 0; i < M; i++)
        Lj:   for (j = 0; j < N; j++) {
        Lk:     for (k = 0; k < j; k++)
                  B[i][j] -= B[i][k] * A[k][j];
        Ld:     B[i][j] = B[i][j] / A[j][j];
              }
        """
    ),
    ("R", "L", "T"): (
        """
        Li: for (i = 0; i < M; i++)
        Lj:   for (j = 0; j < N; j++) {
        Lk:     for (k = 0; k < j; k++)
                  B[i][j] -= B[i][k] * A[j][k];
        Ld:     B[i][j] = B[i][j] / A[j][j];
              }
        """
    ),
    ("R", "L", "N"): (
        """
        Li: for (i = 0; i < M; i++)
        Lj:   for (jj = 0; jj < N; jj++) {
        Lk:     for (k = N - jj; k < N; k++)
                  B[i][N - 1 - jj] -= B[i][k] * A[k][N - 1 - jj];
        Ld:     B[i][N - 1 - jj] = B[i][N - 1 - jj] / A[N - 1 - jj][N - 1 - jj];
              }
        """
    ),
    ("R", "U", "T"): (
        """
        Li: for (i = 0; i < M; i++)
        Lj:   for (jj = 0; jj < N; jj++) {
        Lk:     for (k = N - jj; k < N; k++)
                  B[i][N - 1 - jj] -= B[i][k] * A[N - 1 - jj][k];
        Ld:     B[i][N - 1 - jj] = B[i][N - 1 - jj] / A[N - 1 - jj][N - 1 - jj];
              }
        """
    ),
}


def _trsm_spec(side: str, uplo: str, trans: str) -> RoutineSpec:
    tri_dim = "M" if side == "L" else "N"
    return RoutineSpec(
        variant=VariantName("TRSM", side=side, uplo=uplo, trans=trans),
        source=_TRSM_FORMS[(side, uplo, trans)],
        arrays=(
            Array(
                "A",
                (var(tri_dim), var(tri_dim)),
                triangular="lower" if uplo == "L" else "upper",
            ),
            Array("B", (var("M"), var("N"))),
        ),
        dim_symbols=("M", "N"),
        adaptations=(
            (("Adaptor_Transpose", "A"),) if trans == "T" else ()
        )
        + (("Adaptor_Solver", "A"),),
        output="B",
        flops_formula="MMN" if side == "L" else "MNN",
        role_map=(
            (("A", "A"), ("B", "B"), ("C", "B"))
            if side == "L"
            else (("A", "B"), ("B", "A"), ("C", "B"))
        ),
    )


def _build_catalog() -> Dict[str, RoutineSpec]:
    specs: List[RoutineSpec] = []
    specs.extend(_gemm_spec(a, b) for a in "NT" for b in "NT")
    specs.extend(_symm_spec(s, u) for s in "LR" for u in "LU")
    specs.extend(_trmm_spec(s, u, t) for s in "LR" for u in "LU" for t in "NT")
    specs.extend(_trsm_spec(s, u, t) for s in "LR" for u in "LU" for t in "NT")
    specs.extend(_bgemm_spec(a, b) for a in "NT" for b in "NT")
    catalog = {spec.name: spec for spec in specs}
    assert set(catalog) == {
        v.name for v in ALL_VARIANTS + BATCHED_VARIANTS
    }
    return catalog


_CATALOG = _build_catalog()


def get_spec(name: str) -> RoutineSpec:
    """Look up a routine spec by its postfix name (e.g. ``TRSM-LL-N``)."""
    key = parse_variant(name).name
    return _CATALOG[key]


def all_specs() -> List[RoutineSpec]:
    return [_CATALOG[v.name] for v in ALL_VARIANTS]


def build_routine(name: str) -> Computation:
    """Build the labeled-source computation for a variant, with the
    developer's region annotations applied."""
    spec = get_spec(name)
    comp = build_computation(
        spec.name, spec.source, spec.arrays, dim_symbols=spec.dim_symbols
    )
    if spec.regions:
        lk = comp.find_loop("Lk")
        lj = comp.find_loop("Lj")
        stmts = list(lk.body) + [n for n in lj.body if n is not lk]
        for pos, region in spec.regions:
            stmt = stmts[pos]
            for ref in stmt.expr.array_refs():
                if ref.array == "A":
                    ref.region = region
    return comp
