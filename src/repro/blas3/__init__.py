"""BLAS3 routine catalog: the 24 variants of the paper's evaluation."""

from .naming import ALL_VARIANTS, FAMILIES, VariantName, parse_variant
from .reference import densify_symmetric, densify_triangular, random_inputs, reference
from .routines import BASE_GEMM_SCRIPT, RoutineSpec, all_specs, build_routine, get_spec

__all__ = [
    "ALL_VARIANTS",
    "BASE_GEMM_SCRIPT",
    "FAMILIES",
    "RoutineSpec",
    "VariantName",
    "all_specs",
    "build_routine",
    "densify_symmetric",
    "densify_triangular",
    "get_spec",
    "parse_variant",
    "random_inputs",
    "reference",
]
