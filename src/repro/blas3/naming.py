"""Variant naming for the 24 BLAS3 routine variants the paper evaluates.

The paper identifies variants by postfixes: ``TRSM-LL-N`` is TRSM with a
Left-side Lower-triangular matrix, Not transposed (§V-A).  The four
families and their option axes:

* ``GEMM-{N,T}{N,T}``  — transposition of A and B (4 variants),
* ``SYMM-{L,R}{L,U}``  — side and stored triangle of the symmetric A (4),
* ``TRMM-{L,R}{L,U}-{N,T}`` — side, uplo and transposition (8),
* ``TRSM-{L,R}{L,U}-{N,T}`` — same (8).

Beyond the paper's 24, the serving tier adds a strided-batched family:
``BGEMM-{N,T}{N,T}`` — batched GEMM over a leading batch dimension P
(one launch covering P independent small problems).  It is kept out of
``ALL_VARIANTS`` (and the paper-facing library sweeps) on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "VariantName",
    "ALL_VARIANTS",
    "BATCHED_VARIANTS",
    "parse_variant",
    "FAMILIES",
]

FAMILIES = ("GEMM", "SYMM", "TRMM", "TRSM")


@dataclass(frozen=True)
class VariantName:
    family: str
    #: GEMM: ('N'|'T' for A, 'N'|'T' for B); others: side 'L'|'R'
    side: Optional[str] = None
    uplo: Optional[str] = None  # 'L'ower | 'U'pper
    trans: Optional[str] = None  # 'N' | 'T'
    trans_a: Optional[str] = None  # GEMM only
    trans_b: Optional[str] = None  # GEMM only

    @property
    def name(self) -> str:
        if self.family in ("GEMM", "BGEMM"):
            return f"{self.family}-{self.trans_a}{self.trans_b}"
        if self.family == "SYMM":
            return f"SYMM-{self.side}{self.uplo}"
        return f"{self.family}-{self.side}{self.uplo}-{self.trans}"

    def __str__(self):
        return self.name


def _gemm(a: str, b: str, family: str = "GEMM") -> VariantName:
    return VariantName(family, trans_a=a, trans_b=b)


def _symm(side: str, uplo: str) -> VariantName:
    return VariantName("SYMM", side=side, uplo=uplo)


def _tr(family: str, side: str, uplo: str, trans: str) -> VariantName:
    return VariantName(family, side=side, uplo=uplo, trans=trans)


ALL_VARIANTS: Tuple[VariantName, ...] = tuple(
    [_gemm(a, b) for a in "NT" for b in "NT"]
    + [_symm(s, u) for s in "LR" for u in "LU"]
    + [_tr("TRMM", s, u, t) for s in "LR" for u in "LU" for t in "NT"]
    + [_tr("TRSM", s, u, t) for s in "LR" for u in "LU" for t in "NT"]
)

assert len(ALL_VARIANTS) == 24

#: strided-batched additions (serving-tier family, not in ALL_VARIANTS)
BATCHED_VARIANTS: Tuple[VariantName, ...] = tuple(
    _gemm(a, b, "BGEMM") for a in "NT" for b in "NT"
)


def parse_variant(name: str) -> VariantName:
    """Parse a postfix name like ``TRSM-LL-N`` back into a VariantName."""
    parts = name.upper().split("-")
    family = parts[0]
    if family not in FAMILIES + ("BGEMM",):
        raise ValueError(f"unknown BLAS3 family {family!r}")
    if family in ("GEMM", "BGEMM"):
        if len(parts) != 2 or len(parts[1]) != 2 or set(parts[1]) - set("NT"):
            raise ValueError(f"bad {family} variant {name!r}")
        return _gemm(parts[1][0], parts[1][1], family)
    if family == "SYMM":
        if len(parts) != 2 or len(parts[1]) != 2:
            raise ValueError(f"bad SYMM variant {name!r}")
        side, uplo = parts[1][0], parts[1][1]
        if side not in "LR" or uplo not in "LU":
            raise ValueError(f"bad SYMM variant {name!r}")
        return _symm(side, uplo)
    if len(parts) != 3 or len(parts[1]) != 2 or parts[2] not in ("N", "T"):
        raise ValueError(f"bad {family} variant {name!r}")
    side, uplo = parts[1][0], parts[1][1]
    if side not in "LR" or uplo not in "LU":
        raise ValueError(f"bad {family} variant {name!r}")
    return _tr(family, side, uplo, parts[2])
